(** The FastFlip analysis pipeline for one program version (paper §4,
    Figure 2): per-section error injection + sensitivity analysis, both
    served from the incremental {!Store} when possible; end-to-end Chisel
    propagation; Algorithm-2 valuation; knapsack solution.

    Analysis "time" is metered in dynamic instructions simulated. The
    work reported for a version counts only sections actually re-analyzed
    — reused sections cost nothing, which is FastFlip's speedup on
    evolving programs (§6.2). *)

type config = {
  campaign : Ff_inject.Campaign.config;
  sensitivity_samples : int;
  max_perturbation : float;
  safety_factor : float;
  epsilon : float;       (** SDC-Bad threshold ε (0 = any SDC is bad) *)
  seed : int64;          (** sensitivity RNG seed *)
}

val default_config : config
(** Paper settings scaled down: default bit subset, 5× timeout, 200
    sensitivity samples per input, perturbations up to 0.01, safety 1.25,
    ε = 0, seed 42. *)

type analysis = {
  golden : Ff_vm.Golden.t;
  dataflow : Ff_chisel.Dataflow.t;
  sections : Store.section_record array;  (** one per schedule section *)
  propagation : Ff_chisel.Propagate.t;
  valuation : Valuation.t;
  solution : Knapsack.solution;
  work : int;             (** injection+sensitivity work spent on THIS run *)
  total_section_work : int;  (** what a from-scratch run would have cost *)
  sections_reused : int;
  sections_analyzed : int;
}

val config_hash : config -> int64
(** Digest of the full analysis configuration — campaign (bits, burst,
    timeout, prover policy), sensitivity sampling, seed, and ε. Two
    configs with equal hashes produce the same analysis of the same
    program; the serve daemon keys its warm-state cache on
    [(source, config_hash)]. Note this is {e not} the per-section store
    key's config component (which excludes ε, because stored outcomes can
    be re-labeled under a new ε without re-injection). *)

val coverage_key :
  config -> Ff_vm.Golden.section_run -> detector_hash:int64 -> Store.key
(** The FFSTORE3 key under which injection-measured detector coverage of
    this section is cached: the section's campaign store key scoped by
    [detector_hash] (the digest of the exact candidate detector set), a
    coverage-format version, and ε (the bad-class set being measured is
    ε-dependent). The scoping keeps coverage records in a key space
    disjoint from campaign records, so both kinds share one store file,
    one save path, and one salvage story. *)

type prepared = {
  p_program : Ff_ir.Program.t;
  p_golden : Ff_vm.Golden.t;      (** carries the decoded kernels *)
  p_dataflow : Ff_chisel.Dataflow.t;
  p_keys : Store.key array;       (** store key of each schedule section *)
}
(** Pre-warmed analysis state: everything {!analyze} derives before it
    decides what to inject. The serve daemon computes this once per
    request, probes the store with [p_keys] to classify the request as
    replay-free or injection-bound ({e admission control}), and then
    hands it to {!analyze_prepared} — nothing is re-derived. *)

val prepare : config -> Ff_ir.Program.t -> prepared
(** Golden-run the program, build the dataflow summary, and compute the
    per-section store keys. Raises [Failure] if the golden run traps. *)

type backing = {
  lookup : Store.key -> Store.section_record option;
  publish : Store.section_record -> unit;
}
(** Store access as first-class callbacks, so a caller that shares one
    store between concurrent analyses (the serve daemon) can interpose a
    lock held only for the microseconds of each lookup/insert — never for
    the duration of a campaign. *)

val backing_of_store : Store.t -> backing
(** Plain unsynchronized access — what the one-shot CLI uses. *)

val analyze_prepared :
  ?backing:backing ->
  ?pool:Ff_support.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  config ->
  prepared ->
  analysis
(** {!analyze} starting from pre-warmed state: identical semantics,
    counters, and results, but the golden run, dataflow, and section keys
    are taken from [prepared] instead of being re-derived. Without a
    [backing] every section is re-analyzed (no store). *)

val analyze :
  ?store:Store.t ->
  ?pool:Ff_support.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  config ->
  Ff_ir.Program.t ->
  analysis
(** Analyze one program version. With a [store], section results are
    looked up by (code, input, config) hash and new results are added,
    so analyzing a modified version after its parent re-injects only the
    changed (and semantically affected) sections.

    With a [pool], cache-miss sections are analyzed across domains (and a
    lone miss parallelizes its own campaign/sensitivity loops instead).
    The store stays single-writer: every lookup and insertion happens on
    the coordinating domain in schedule order, so the analysis — records,
    valuation, solution, work and reuse counters, store telemetry — is
    bit-identical to the serial run for any pool width.

    With a [checkpoint], every cache-miss campaign journals its completed
    equivalence classes ({!Checkpoint}): an analysis killed mid-campaign
    and re-run against the resumed journal replays only the unfinished
    classes and produces the same analysis bit-for-bit — sections,
    valuation, solution, and work counters — as an uninterrupted run, for
    any pool width. *)

val ground_truth_for_section :
  ?pool:Ff_support.Pool.t ->
  analysis ->
  section_index:int ->
  Ff_inject.Campaign.config ->
  (Ff_inject.Eqclass.t * Ff_inject.Outcome.final_outcome) array * int
(** End-to-end ground-truth outcomes for one analyzed section (§4.10),
    reusing the equivalence classes its per-section campaign already
    enumerated — no re-enumeration of the trace. Returns the classes with
    final outcomes and the extra injection work spent. *)

val select : analysis -> target:float -> Knapsack.selection
(** Knapsack selection for a fractional target v_trgt ∈ [0, 1] of this
    analysis' own value mass. *)

val revaluate : analysis -> epsilon:float -> analysis
(** Re-label the stored injection outcomes under a different ε and
    rebuild valuation + knapsack without any new injections (the paper
    gets its ε = 0.01 results "for negligible additional analysis time",
    §6.4). *)
