(** The FastFlip analysis pipeline for one program version (paper §4,
    Figure 2): per-section error injection + sensitivity analysis, both
    served from the incremental {!Store} when possible; end-to-end Chisel
    propagation; Algorithm-2 valuation; knapsack solution.

    Analysis "time" is metered in dynamic instructions simulated. The
    work reported for a version counts only sections actually re-analyzed
    — reused sections cost nothing, which is FastFlip's speedup on
    evolving programs (§6.2). *)

type config = {
  campaign : Ff_inject.Campaign.config;
  sensitivity_samples : int;
  max_perturbation : float;
  safety_factor : float;
  epsilon : float;       (** SDC-Bad threshold ε (0 = any SDC is bad) *)
  seed : int64;          (** sensitivity RNG seed *)
}

val default_config : config
(** Paper settings scaled down: default bit subset, 5× timeout, 200
    sensitivity samples per input, perturbations up to 0.01, safety 1.25,
    ε = 0, seed 42. *)

type analysis = {
  golden : Ff_vm.Golden.t;
  dataflow : Ff_chisel.Dataflow.t;
  sections : Store.section_record array;  (** one per schedule section *)
  propagation : Ff_chisel.Propagate.t;
  valuation : Valuation.t;
  solution : Knapsack.solution;
  work : int;             (** injection+sensitivity work spent on THIS run *)
  total_section_work : int;  (** what a from-scratch run would have cost *)
  sections_reused : int;
  sections_analyzed : int;
}

val analyze :
  ?store:Store.t ->
  ?pool:Ff_support.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  config ->
  Ff_ir.Program.t ->
  analysis
(** Analyze one program version. With a [store], section results are
    looked up by (code, input, config) hash and new results are added,
    so analyzing a modified version after its parent re-injects only the
    changed (and semantically affected) sections.

    With a [pool], cache-miss sections are analyzed across domains (and a
    lone miss parallelizes its own campaign/sensitivity loops instead).
    The store stays single-writer: every lookup and insertion happens on
    the coordinating domain in schedule order, so the analysis — records,
    valuation, solution, work and reuse counters, store telemetry — is
    bit-identical to the serial run for any pool width.

    With a [checkpoint], every cache-miss campaign journals its completed
    equivalence classes ({!Checkpoint}): an analysis killed mid-campaign
    and re-run against the resumed journal replays only the unfinished
    classes and produces the same analysis bit-for-bit — sections,
    valuation, solution, and work counters — as an uninterrupted run, for
    any pool width. *)

val ground_truth_for_section :
  ?pool:Ff_support.Pool.t ->
  analysis ->
  section_index:int ->
  Ff_inject.Campaign.config ->
  (Ff_inject.Eqclass.t * Ff_inject.Outcome.final_outcome) array * int
(** End-to-end ground-truth outcomes for one analyzed section (§4.10),
    reusing the equivalence classes its per-section campaign already
    enumerated — no re-enumeration of the trace. Returns the classes with
    final outcomes and the extra injection work spent. *)

val select : analysis -> target:float -> Knapsack.selection
(** Knapsack selection for a fractional target v_trgt ∈ [0, 1] of this
    analysis' own value mass. *)

val revaluate : analysis -> epsilon:float -> analysis
(** Re-label the stored injection outcomes under a different ε and
    rebuild valuation + knapsack without any new injections (the paper
    gets its ε = 0.01 results "for negligible additional analysis time",
    §6.4). *)
