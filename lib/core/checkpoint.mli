(** Crash-safe campaign checkpointing.

    Injection campaigns are the expensive part of the analysis (99% of
    FastFlip's time, §6.2), and on a long run a crash — OOM kill, node
    preemption, ctrl-C — used to cost every completed injection. This
    module keeps an append-only {e journal} of completed equivalence-class
    outcomes next to the store: {!Pipeline.analyze} (via
    {!Ff_inject.Campaign.run_section}) appends a CRC-framed, fsynced
    batch every [every] classes, and a resumed run restores those
    outcomes instead of replaying them, finishing with {e bit-identical}
    results (outcomes and work counters both ride in the journal).

    Entries are keyed by the section's store key (code, input, config
    hashes) plus the class index in the deterministic enumeration order,
    so a journal survives process restarts, schedule reindexing, and even
    sections from several interleaved analyses. The file format shares
    {!Wire}'s salvaging frame reader: a journal whose tail was mangled by
    the crash that killed the process still resumes from its last intact
    batch.

    The journal is a cache of in-flight work, not a second store: once
    the analysis completes and the store is saved, {!remove} it. *)

type t

exception Simulated_crash
(** Raised by the fault-injection hook ([crash_after]); see {!start}. *)

val start :
  ?crash_after:int ->
  path:string ->
  every:int ->
  resume:bool ->
  unit ->
  (t, string) result
(** Open the journal at [path]. With [resume = false] (or no existing
    file) the journal starts empty, truncating any leftover; with
    [resume = true] every salvageable entry of the existing file is
    loaded and new batches are appended after it. [every] (>= 1,
    [Invalid_argument] otherwise) is the checkpoint cadence in classes.

    [crash_after: k] is a deterministic fault-injection hook for tests:
    the [k]-th append raises {!Simulated_crash} {e after} the batch is
    durably written — exactly the state a real mid-campaign kill leaves
    behind. The [FF_CHECKPOINT_KILL_AFTER] environment variable is the
    out-of-process version used by the CI crash-recovery smoke test: the
    process SIGKILLs itself instead. *)

val journal : t -> key:Store.key -> Ff_inject.Campaign.journal
(** The campaign-facing view for one section: previously checkpointed
    outcomes of that key as [j_done], and an append hook that frames,
    writes, and fsyncs each completed batch. Appends are serialized by an
    internal mutex and safe from pool worker domains. *)

val loaded : t -> int
(** Class outcomes restored from disk at {!start} time (0 unless
    resuming). *)

val skipped : t -> int
(** Corrupt journal regions skipped by the salvaging reader at {!start}
    time. *)

val path : t -> string

val close : t -> unit
(** Flush and close the journal file, keeping it on disk (a later
    [--resume] picks it up). Idempotent; appending afterwards is a
    programming error ([Invalid_argument]). *)

val remove : t -> unit
(** {!close} and delete the journal — call once the analysis results have
    made it into the saved store. *)
