(** The binary codec shared by the persistent store ({!Persist}) and the
    campaign checkpoint journal ({!Checkpoint}).

    Two layers:

    {ul
    {- {b value codecs}: little-endian writers into a [Buffer.t] and
       cursor-based readers for every analysis type that goes to disk —
       sites, equivalence classes, outcomes, campaign results,
       sensitivity matrices, full store records. Readers validate tags
       and lengths and raise {!Corrupt} rather than producing garbage.}
    {- {b CRC frames}: a self-describing record framing
       ([marker ∥ length ∥ crc32(payload) ∥ crc32(header) ∥ payload]) such
       that {!read_frames} can salvage every intact frame from a file with
       arbitrary truncation or flipped bytes. The header carries its own
       CRC, so a corrupted length cannot derail the reader: it rescans
       for the next marker and loses only the damaged frame.}} *)

(** {1 Writers} *)

val w_int64 : Buffer.t -> int64 -> unit
val w_int : Buffer.t -> int -> unit
val w_float : Buffer.t -> float -> unit
val w_string : Buffer.t -> string -> unit
(** Length-prefixed bytes (used by the serve protocol for program
    sources and rendered reports). *)

val w_array : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a array -> unit
val w_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

(** {1 Readers} *)

exception Corrupt of string
(** Raised by readers on a tag, length, or bounds violation. Framed
    readers catch it per frame; it never escapes {!Persist.load} or
    {!Checkpoint.start}. *)

type cursor = {
  data : string;
  mutable pos : int;
}

val cursor : ?pos:int -> string -> cursor
val at_end : cursor -> bool
val r_int64 : cursor -> int64
val r_int : cursor -> int
val r_float : cursor -> float
val r_length : cursor -> string -> int
(** A non-negative, plausibility-bounded element count. *)

val r_string : cursor -> string -> string
(** Length-prefixed bytes; the length is bounds-checked against the
    remaining input before any allocation. *)

val r_array : cursor -> (cursor -> 'a) -> string -> 'a array
val r_list : cursor -> (cursor -> 'a) -> string -> 'a list

(** {1 Analysis-type codecs} *)

val w_site : Buffer.t -> Ff_inject.Site.t -> unit
val r_site : cursor -> Ff_inject.Site.t
val w_class : Buffer.t -> Ff_inject.Eqclass.t -> unit
val r_class : cursor -> Ff_inject.Eqclass.t
val w_section_outcome : Buffer.t -> Ff_inject.Outcome.section_outcome -> unit
val r_section_outcome : cursor -> Ff_inject.Outcome.section_outcome
val w_campaign : Buffer.t -> Ff_inject.Campaign.section_result -> unit
val r_campaign : cursor -> Ff_inject.Campaign.section_result
val w_sensitivity : Buffer.t -> Ff_sensitivity.Sensitivity.t -> unit
val r_sensitivity : cursor -> Ff_sensitivity.Sensitivity.t
val w_key : Buffer.t -> Store.key -> unit
val r_key : cursor -> Store.key
val w_record : Buffer.t -> Store.section_record -> unit
val r_record : cursor -> Store.section_record

(** {1 CRC frames} *)

val frame : string -> string
(** [frame payload] is the framed encoding of [payload]: a 28-byte header
    (marker, payload length, payload CRC-32, header CRC-32) followed by
    the payload bytes. *)

val add_frame : Buffer.t -> string -> unit

val read_frames : ?pos:int -> string -> string list * int
(** [read_frames data ~pos] scans [data] from [pos] and returns every
    payload whose header and payload CRCs validate, in file order, plus
    the number of corrupt regions skipped (a region is a damaged frame or
    a stretch of garbage up to the next intact frame; a cleanly truncated
    tail that removes whole frames leaves no trace here — callers that
    record an expected count, like {!Persist}, detect that themselves).
    Never raises on any input. *)
