(** The incremental analysis store (paper §4.7).

    Per-section results are keyed by (kernel code hash, golden input-value
    hash, campaign config hash). When developers modify a program, only
    sections whose key changed — edited kernels, or downstream sections
    whose golden inputs differ because an upstream section changed
    semantics — miss in the store and must be re-analyzed; everything else
    is reused at zero injection cost. Semantics-preserving modifications
    therefore re-analyze exactly the edited sections.

    The store also tracks which records are {e dirty} — added or replaced
    since the last persist — so {!Persist.save} can append just the delta
    to the sharded on-disk log instead of rewriting the world. *)

type key = {
  code_hash : int64;
  input_hash : int64;
  config_hash : int64;
}

type section_record = {
  rec_key : key;
  rec_campaign : Ff_inject.Campaign.section_result;
  rec_sensitivity : Ff_sensitivity.Sensitivity.t;
  rec_work : int;  (** injection + sensitivity work this record cost *)
}

type t

val create : unit -> t

val find : t -> key -> section_record option

val peek : t -> key -> section_record option
(** {!find} without touching the hit/miss telemetry — for admission
    probes (the serve daemon classifying a request as replay-free before
    the real, counted lookups run) that must not perturb the counters the
    analysis itself reports. *)

val add : t -> section_record -> unit
(** Last write wins on key collisions. Marks the record dirty. *)

val add_clean : t -> section_record -> unit
(** {!add} without marking the record dirty and without telemetry — used
    by {!Persist.load} for records that already live on disk. *)

val records : t -> section_record list
(** Every stored record, in unspecified order (used by {!Persist}). *)

val dirty_records : t -> section_record list
(** The records changed since the last {!clean} (unspecified order) —
    the delta an incremental {!Persist.save} appends. *)

val dirty_count : t -> int

val clean : t -> section_record list -> unit
(** Mark [written] records clean. A key whose record was replaced again
    after [written] was snapshotted (a concurrent {!add} during a save)
    stays dirty, so the next save still persists the newer record. *)

val size : t -> int

val hits : t -> int
(** Number of successful {!find}s since creation (telemetry for tests
    and reports). *)

val misses : t -> int
