(** The incremental analysis store (paper §4.7).

    Per-section results are keyed by (kernel code hash, golden input-value
    hash, campaign config hash). When developers modify a program, only
    sections whose key changed — edited kernels, or downstream sections
    whose golden inputs differ because an upstream section changed
    semantics — miss in the store and must be re-analyzed; everything else
    is reused at zero injection cost. Semantics-preserving modifications
    therefore re-analyze exactly the edited sections. *)

type key = {
  code_hash : int64;
  input_hash : int64;
  config_hash : int64;
}

type section_record = {
  rec_key : key;
  rec_campaign : Ff_inject.Campaign.section_result;
  rec_sensitivity : Ff_sensitivity.Sensitivity.t;
  rec_work : int;  (** injection + sensitivity work this record cost *)
}

type t

val create : unit -> t

val find : t -> key -> section_record option

val peek : t -> key -> section_record option
(** {!find} without touching the hit/miss telemetry — for admission
    probes (the serve daemon classifying a request as replay-free before
    the real, counted lookups run) that must not perturb the counters the
    analysis itself reports. *)

val add : t -> section_record -> unit
(** Last write wins on key collisions. *)

val records : t -> section_record list
(** Every stored record, in unspecified order (used by {!Persist}). *)

val size : t -> int

val hits : t -> int
(** Number of successful {!find}s since creation (telemetry for tests
    and reports). *)

val misses : t -> int
