(** On-disk persistence of the incremental analysis store.

    FastFlip "records the analysis results for reuse on future program
    versions" (§1); persisting the store across process runs makes the
    incremental analysis usable from a CI job or the serve daemon. On a
    production deployment the store {e is} the accumulated value of every
    campaign ever run, so this layer is built to survive the faults such
    deployments see — and to charge saves for what changed, not for what
    exists.

    {2 Layout (format [FFSTORE3])}

    A store at [path] is a {e manifest} plus [N] {e shard logs}:

    {ul
    {- [path] — the manifest: magic, then one CRC frame declaring the
       layout width [N], a {e generation} counter bumped by every
       content-changing save, and the record-frame count of each log.}
    {- [path.sNN] — shard log [NN]: magic, then an append-only sequence
       of CRC-framed records ({!Wire.frame}). Records are hash-sharded by
       store key, so each key lives in exactly one log; within a log a
       later frame for the same key supersedes the earlier one (a
       {e delta log}).}}

    {2 Guarantees}

    {ul
    {- {b O(dirty) saves}: {!save} appends only the records added or
       replaced since the store was loaded or last saved ({!Store}'s
       dirty tracking), then updates the manifest — it never reads or
       rewrites existing records.}
    {- {b Corruption}: {!load} salvages every intact frame from every
       log; a corrupt shard loses only its own damaged region, never its
       siblings. The manifest's declared counts catch clean tail
       truncation that CRCs cannot; a destroyed manifest degrades to
       probing the logs directly.}
    {- {b Crashes}: log appends are fsynced before the manifest declares
       them, and manifest/compaction rewrites go through
       temp-fsync-rename, so at every instant declared <= actual — a
       reader racing a save or a crash never sees phantom corruption and
       never loses an acknowledged record.}
    {- {b Concurrent writers}: each log has its own advisory lock
       ([path.sNN.lock], paired with an in-process mutex so domains and
       threads are excluded too); writers touching disjoint shards
       append in parallel. Lock order is shard locks ascending, then the
       manifest lock ([path.lock]) — deadlock-free by construction.
       Blind appends make merge-don't-clobber the default: nobody
       overwrites records it has not seen.}
    {- {b Compaction}: a save that leaves a log with at least 8 frames
       and more than twice its live records rewrites just that log down
       to the live set (original payload bytes preserved); {!compact}
       does it store-wide and can reshard.}}

    Legacy [FFSTORE2]/[FFSTORE1] files still load; the first {!save} over
    one migrates it to v3 in place. *)

val default_shards : int
(** Layout width given to newly created stores when [?shards] is omitted
    (16). *)

val max_shards : int
(** Upper bound on a layout width (64). *)

val shard_of : shards:int -> Store.key -> int
(** The shard index [key] hashes to in a [shards]-wide layout (stable
    across processes; exposed for tests and benchmarks that construct
    disjoint-shard workloads). *)

val shard_path : string -> int -> string
(** [shard_path path i] is the shard-log file name [path.sNN]. *)

(** {1 Saving} *)

type save_stats = {
  sv_appended : int;  (** records written by this save *)
  sv_live : int;  (** records in the in-memory store after the save *)
  sv_compacted : int;  (** shard logs compacted as a side effect *)
  sv_generation : int64;  (** the store's generation after the save *)
}

val save : ?known_generation:int64 -> ?shards:int -> Store.t -> path:string -> save_stats
(** Persist [store]'s dirty records to the v3 store at [path] and mark
    them clean.

    Over an existing v3 store this appends the dirty records to their
    shard logs and bumps the manifest — O(dirty) work; the layout width
    on disk wins and [?shards] is ignored. A missing [path] creates a
    fresh [?shards]-wide store (default {!default_shards}) holding every
    record; a legacy v1/v2 file is migrated: its records are merged in
    (ours winning on collisions) and the whole store is rewritten as v3.

    [?known_generation] is the caller's proof of freshness: if it equals
    the current on-disk generation (as returned by {!load_v} or a
    previous save), the migration path skips re-reading the legacy file
    it would otherwise have to merge — the daemon's save-on-exit uses
    this after having loaded the store itself.

    Raises [Sys_error] / [Unix.Unix_error] on I/O failure and
    [Invalid_argument] on a [?shards] outside [1, {!max_shards}] — never
    leaves a store unloadable. *)

(** {1 Loading} *)

val present : path:string -> bool
(** Whether there is anything at [path] worth loading: a manifest (or
    legacy store file), or — after a crash that never reached the first
    manifest write — recognizable shard logs to salvage. Callers that
    used to gate a load on [Sys.file_exists] should use this instead, or
    a mid-first-save crash looks like a missing store. *)

val load : path:string -> (Store.t * int, string) result
(** Read the store at [path] (v3, or a legacy v2/v1 file).
    [Ok (store, skipped)] holds every record that survived CRC and
    structural validation plus the number of corrupt records/regions
    skipped; [skipped = 0] means the store was pristine. [Error] only for
    a missing/unreadable file or one that is not a FastFlip store at all.
    Never raises on corrupt input (including files truncated or appended
    to concurrently with the read). *)

val load_v : path:string -> (Store.t * int * int64, string) result
(** {!load}, also returning the store's generation — pass it back to
    {!save} as [?known_generation]. Legacy files report a stat-derived
    fingerprint that plays the same role. *)

val generation : path:string -> int64 option
(** The current on-disk generation without reading any records; [None]
    if [path] is missing or not a store. *)

(** {1 Inspection and maintenance} *)

type shard_info = {
  sh_index : int;
  sh_bytes : int;
  sh_frames : int;  (** valid record frames, superseded ones included *)
  sh_live : int;  (** distinct keys (last frame wins) *)
  sh_skipped : int;  (** corrupt regions + declared-count shortfall *)
}

type info = {
  st_format : string;  (** ["FFSTORE3"], ["FFSTORE2"] or ["FFSTORE1"] *)
  st_shards : int;
  st_generation : int64;
  st_live : int;
  st_dead : int;  (** superseded frames awaiting compaction *)
  st_bytes : int;  (** manifest + all logs *)
  st_skipped : int;
  st_per_shard : shard_info list;  (** one synthetic entry for legacy files *)
}

val stat : path:string -> (info, string) result
(** Scan the store at [path] without locking (racing writers can only
    make the numbers momentarily conservative). *)

type compact_stats = {
  cp_live : int;
  cp_dropped : int;  (** superseded/corrupt frames left behind *)
  cp_shards : int;
  cp_generation : int64;
}

val compact : ?shards:int -> path:string -> unit -> (compact_stats, string) result
(** Rewrite the whole store down to its live records, under every shard
    lock. [?shards] reshards to a new layout width; omitted, the current
    width is kept (legacy input: {!default_shards} — compacting a v1/v2
    file migrates it). Concurrent readers may transiently over-count
    [skipped] during a reshard; they never lose records. *)

(** {1 Legacy writers} *)

val save_legacy_v1 : Store.t -> path:string -> unit
(** Write the pre-hardening [FFSTORE1] encoding (no framing, no CRC, not
    atomic). Exists so compatibility fixtures exercise the real legacy
    format; production code paths always use {!save}. *)

val save_legacy_v2 : Store.t -> path:string -> unit
(** Write the monolithic [FFSTORE2] encoding (one atomic file of CRC
    frames). Exists for migration fixtures and the corrupt-store fuzz
    that targets the v2 salvage path. *)

(** {1 Structural equality (tests)} *)

val roundtrip_equal : Store.section_record -> Store.section_record -> bool
(** Structural equality of two records (exposed for tests; floats compare
    by bit pattern). *)
