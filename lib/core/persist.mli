(** On-disk persistence of the incremental analysis store.

    FastFlip "records the analysis results for reuse on future program
    versions" (§1); persisting the store across process runs makes the
    incremental analysis usable from a CI job: load the store produced by
    the previous commit's job, analyze, save. On a production deployment
    the store {e is} the accumulated value of every campaign ever run, so
    this layer is built to survive the faults such deployments see:

    {ul
    {- {b Corruption}: format [FFSTORE2] frames every record with a
       length prefix and CRC-32 ({!Wire.frame}); {!load} salvages every
       intact record from a truncated or bit-flipped file and reports how
       many it had to skip, instead of dropping the whole store.}
    {- {b Crashes}: {!save} writes a temp file, fsyncs, and renames it
       over the target — a crash mid-save leaves the previous store
       intact.}
    {- {b Concurrent writers}: {!save} takes an advisory lock
       ([path].lock) and merges the on-disk records it did not know about
       before writing, so two fastflip processes sharing a store cannot
       clobber each other's results.}}

    Legacy [FFSTORE1] files (no framing) still load; {!save} always
    writes v2. *)

val save : Store.t -> path:string -> int
(** Atomically replace the store at [path] with the union of [store] and
    whatever is currently on disk (records in [store] win on key
    collisions), under the advisory writer lock. Returns the number of
    records written. Raises [Sys_error] / [Unix.Unix_error] on I/O
    failure — never leaves a half-written store behind. *)

val load : path:string -> (Store.t * int, string) result
(** Read a store written by {!save} (or a legacy [FFSTORE1] file).
    [Ok (store, skipped)] holds every record that survived CRC and
    structural validation plus the number of corrupt records/regions
    skipped; [skipped = 0] means the file was pristine. [Error] only for
    a missing/unreadable file or one that is not a FastFlip store at all.
    Never raises on corrupt input (including files truncated concurrently
    with the read). *)

val save_legacy_v1 : Store.t -> path:string -> unit
(** Write the pre-hardening [FFSTORE1] encoding (no framing, no CRC, not
    atomic). Exists so compatibility fixtures exercise the real legacy
    format; production code paths always use {!save}. *)

val roundtrip_equal : Store.section_record -> Store.section_record -> bool
(** Structural equality of two records (exposed for tests; floats compare
    by bit pattern). *)
