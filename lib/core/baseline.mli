(** The monolithic Approxilyzer-only baseline (paper §5.6).

    Treats the whole execution as one section: whole-trace equivalence
    classes, end-to-end injections, direct SDC-Bad labeling of the final
    outputs. No part of it is reusable across program versions — the
    whole campaign reruns every time, which is the cost FastFlip
    amortizes away. *)

type t = {
  golden : Ff_vm.Golden.t;
  result : Ff_inject.Campaign.baseline_result;
  valuation : Valuation.t;
  solution : Knapsack.solution;
  work : int;
}

val analyze :
  ?pool:Ff_support.Pool.t ->
  Ff_inject.Campaign.config -> epsilon:float -> Ff_vm.Golden.t -> t
(** With a [pool], the whole-trace campaign fans out over domains;
    results are bit-identical to the serial run for any width. *)

val revaluate : t -> epsilon:float -> t
(** Re-label stored outcomes under a different ε (no new injections). *)

val select : t -> target:float -> Knapsack.selection
(** Cheapest selection achieving a fractional target of the baseline's
    own value mass. *)
