module Site = Ff_inject.Site
module Telemetry = Ff_support.Telemetry

let m_solves = Telemetry.counter "knapsack.solves"
let m_items = Telemetry.counter "knapsack.items"
let m_dp_cells = Telemetry.counter "knapsack.dp_cells"
let m_take_bytes = Telemetry.counter "knapsack.take_bytes"
let h_dp_cells = Telemetry.histogram "knapsack.dp_cells_per_solve"

type item = {
  pc : Site.pc;
  value : int;
  cost : int;
}

type solution = {
  items : item array;
  dp : int array;         (** dp.(v): min cost to reach value >= v *)
  take : Bytes.t array;   (** take.(i) bit v: item i improved dp.(v) *)
  total_value : int;
}

let infinite_cost = max_int / 2

let bit_get bytes v = Char.code (Bytes.get bytes (v lsr 3)) land (1 lsl (v land 7)) <> 0

let bit_set bytes v =
  let i = v lsr 3 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lor (1 lsl (v land 7))))

let solve items =
  Telemetry.span "knapsack.solve" @@ fun () ->
  let items =
    List.filter (fun item -> item.value > 0) items
    |> List.sort (fun a b -> Site.compare_pc a.pc b.pc)
    |> Array.of_list
  in
  let total_value = Array.fold_left (fun acc item -> acc + item.value) 0 items in
  let dp = Array.make (total_value + 1) infinite_cost in
  dp.(0) <- 0;
  let bytes_per_row = (total_value / 8) + 1 in
  let take = Array.map (fun _ -> Bytes.make bytes_per_row '\000') items in
  Array.iteri
    (fun i item ->
      let row = take.(i) in
      for v = total_value downto 1 do
        let prev = dp.(max 0 (v - item.value)) in
        if prev < infinite_cost then begin
          let candidate = prev + item.cost in
          if candidate < dp.(v) then begin
            dp.(v) <- candidate;
            bit_set row v
          end
        end
      done)
    items;
  Telemetry.incr m_solves;
  Telemetry.add m_items (Array.length items);
  Telemetry.add m_dp_cells (total_value + 1);
  Telemetry.add m_take_bytes (Array.length items * bytes_per_row);
  Telemetry.observe h_dp_cells (total_value + 1);
  { items; dp; take; total_value }

let max_value s = s.total_value

type selection = {
  pcs : Site.pc list;
  value : int;
  cost : int;
}

let select s ~target =
  if target <= 0 then { pcs = []; value = 0; cost = 0 }
  else begin
    let target = min target s.total_value in
    let v = ref target in
    let pcs = ref [] in
    let value = ref 0 in
    let cost = ref 0 in
    for i = Array.length s.items - 1 downto 0 do
      if !v > 0 && bit_get s.take.(i) !v then begin
        let item = s.items.(i) in
        pcs := item.pc :: !pcs;
        value := !value + item.value;
        cost := !cost + item.cost;
        v := max 0 (!v - item.value)
      end
    done;
    { pcs = !pcs; value = !value; cost = !cost }
  end

(* The DP's achievable frontier: for each distinct cost, the largest
   value it buys. dp is monotone nondecreasing in v, so the frontier is
   exactly the values v where dp strictly increases at v+1 (or v is the
   total). Every frontier pair is achieved *exactly*: the cheapest
   selection with value >= v has cost dp.(v) and, since v is the largest
   value at that cost, value exactly v — which is what lets a caller
   reconstruct a frontier point with [select ~target:v] and get back
   precisely (v, dp v). *)
let points s =
  let pts = ref [] in
  for v = s.total_value downto 1 do
    if s.dp.(v) < infinite_cost && (v = s.total_value || s.dp.(v) < s.dp.(v + 1)) then
      pts := (v, s.dp.(v)) :: !pts
  done;
  (0, 0) :: !pts

let items_of_valuation (valuation : Valuation.t) =
  List.map
    (fun (pc, value) -> { pc; value; cost = Valuation.cost_of valuation pc })
    valuation.Valuation.values
