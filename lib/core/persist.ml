module Telemetry = Ff_support.Telemetry
module Hashing = Ff_support.Hashing

(* Salvage and write-path telemetry: how often the store survives a
   corrupt file, how much it loses when it does, and how much work the
   sharded write path avoids. *)
let m_saves = Telemetry.counter "persist.saves"
let m_merged = Telemetry.counter "persist.saves.merged_records"
let m_loads = Telemetry.counter "persist.loads"
let m_loaded = Telemetry.counter "persist.records_loaded"
let m_skipped = Telemetry.counter "persist.records_skipped"
let m_appends = Telemetry.counter "persist.appends"
let m_appended = Telemetry.counter "persist.records_appended"
let m_compactions = Telemetry.counter "persist.compactions"
let m_migrations = Telemetry.counter "persist.migrations"
let m_gen_skips = Telemetry.counter "persist.merge_loads_skipped"

let magic_v3 = "FFSTORE3"
let magic_v2 = "FFSTORE2"
let magic_v1 = "FFSTORE1"
let magic_shard = "FFSHARD1"
let default_shards = 16
let max_shards = 64

(* A shard log is compacted during a save once it holds at least this
   many frames and more than twice as many as the records believed live
   in it (dead-record ratio > 1/2). *)
let compact_min_frames = 8

(* --- file primitives -------------------------------------------------------- *)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok data
  | exception Sys_error e -> Error e
  (* A concurrent truncation between [in_channel_length] and the read
     surfaces as End_of_file, not Sys_error — fail cleanly, don't leak. *)
  | exception End_of_file -> Error (path ^ ": truncated while reading")

(* First [n] bytes of [path] (fewer if the file is shorter) — enough to
   classify a store format without reading a possibly-huge legacy file. *)
let read_prefix path n =
  match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (e, _, _) -> Error e
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let b = Bytes.create n in
        let rec go off =
          if off >= n then off
          else
            match Unix.read fd b off (n - off) with
            | 0 -> off
            | k -> go (off + k)
        in
        Ok (Bytes.sub_string b 0 (go 0)))

(* Crash-safe replacement: write a sibling temp file, fsync it, then
   rename over the target. Readers see either the old file or the new
   one, never a half-written hybrid; a crash mid-save leaves the previous
   contents untouched. *)
let write_atomic ~path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  (try
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         let len = String.length data in
         let off = ref 0 in
         while !off < len do
           off := !off + Unix.write_substring fd data !off (len - !off)
         done;
         Unix.fsync fd)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  (* Best-effort directory sync so the rename itself survives power loss;
     not all filesystems support it, so failures are ignored. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | dirfd ->
    (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
    Unix.close dirfd
  | exception Unix.Unix_error _ -> ()

(* --- locks ------------------------------------------------------------------- *)

(* POSIX record locks ([lockf]) exclude other processes but not other
   threads or domains of this process, so every file lock is paired with
   an in-process mutex from a registry keyed by lock-file path.

   Lock order, everywhere: shard locks in ascending index order first,
   then the manifest lock ([path].lock). No code path acquires a shard
   lock while holding the manifest lock, so writers cannot deadlock. *)
let lock_registry : (string, Mutex.t) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

let mutex_for lockfile =
  Mutex.lock registry_mu;
  let mu =
    match Hashtbl.find_opt lock_registry lockfile with
    | Some mu -> mu
    | None ->
      let mu = Mutex.create () in
      Hashtbl.add lock_registry lockfile mu;
      mu
  in
  Mutex.unlock registry_mu;
  mu

let with_lock ~lockfile f =
  let mu = mutex_for lockfile in
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      let fd = Unix.openfile lockfile [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
          Unix.close fd)
        (fun () ->
          Unix.lockf fd Unix.F_LOCK 0;
          f ()))

let rec with_locks lockfiles f =
  match lockfiles with
  | [] -> f ()
  | lockfile :: rest -> with_lock ~lockfile (fun () -> with_locks rest f)

(* --- layout ------------------------------------------------------------------ *)

let shard_path path i = Printf.sprintf "%s.s%02d" path i
let shard_lockfile path i = shard_path path i ^ ".lock"

let shard_of ~shards (key : Store.key) =
  let h = Hashing.create () in
  Hashing.add_int64 h key.Store.code_hash;
  Hashing.add_int64 h key.Store.input_hash;
  Hashing.add_int64 h key.Store.config_hash;
  Int64.to_int (Hashing.value h) land max_int mod shards

let check_shards who shards =
  if shards < 1 || shards > max_shards then
    invalid_arg (Printf.sprintf "%s: shard count %d outside [1, %d]" who shards max_shards)

let has_magic data magic =
  String.length data >= String.length magic
  && String.equal (String.sub data 0 (String.length magic)) magic

type disk_format = D_v3 | D_v2 | D_v1 | D_missing | D_other

let classify path =
  match read_prefix path 8 with
  | Error Unix.ENOENT -> D_missing
  | Error _ -> D_other
  | Ok m when String.equal m magic_v3 -> D_v3
  | Ok m when String.equal m magic_v2 -> D_v2
  | Ok m when String.equal m magic_v1 -> D_v1
  | Ok _ -> D_other

(* The manifest (the file at [path] itself): magic, then one CRC frame
   declaring the layout width, a generation counter bumped by every
   content-changing save, and the record-frame count of each shard log.
   The declared counts catch what frame CRCs cannot: a clean truncation
   that removes whole trailing frames from a log. Writers append shard
   data before declaring it, so at every instant declared <= actual for
   a log — a reader racing a save never sees phantom corruption. *)
let manifest_version = 1

type manifest = {
  mf_shards : int;
  mf_generation : int64;
  mf_frames : int array;
}

let encode_manifest mf =
  let payload = Buffer.create 64 in
  Wire.w_int payload manifest_version;
  Wire.w_int payload mf.mf_shards;
  Wire.w_int64 payload mf.mf_generation;
  Wire.w_array payload Wire.w_int mf.mf_frames;
  let buf = Buffer.create 128 in
  Buffer.add_string buf magic_v3;
  Wire.add_frame buf (Buffer.contents payload);
  Buffer.contents buf

let decode_manifest data =
  match Wire.read_frames ~pos:(String.length magic_v3) data with
  | [ payload ], 0 -> (
    try
      let c = Wire.cursor payload in
      let version = Wire.r_int c in
      let shards = Wire.r_int c in
      let generation = Wire.r_int64 c in
      let frames = Wire.r_array c Wire.r_int "shard frame counts" in
      if
        version = manifest_version
        && shards >= 1 && shards <= max_shards
        && Array.length frames = shards
        && Array.for_all (fun n -> n >= 0) frames
        && Wire.at_end c
      then Some { mf_shards = shards; mf_generation = generation; mf_frames = frames }
      else None
    with Wire.Corrupt _ -> None)
  | _ -> None

let read_manifest path =
  match read_file path with
  | Ok data when has_magic data magic_v3 -> decode_manifest data
  | Ok _ | Error _ -> None

(* Content version for legacy v1/v2 files: a digest of the file identity
   (device, inode, size, mtime). Bit 62 is forced so a legacy fingerprint
   can never collide with the small v3 generation counters. *)
let legacy_bit = 0x4000_0000_0000_0000L

let legacy_generation path =
  match Unix.stat path with
  | exception Unix.Unix_error _ -> 0L
  | st ->
    let h = Hashing.create () in
    Hashing.add_int h st.Unix.st_dev;
    Hashing.add_int h st.Unix.st_ino;
    Hashing.add_int h st.Unix.st_size;
    Hashing.add_float h st.Unix.st_mtime;
    Int64.logor (Hashing.value h) legacy_bit

let next_generation = function
  | Some g when g >= 0L && Int64.equal (Int64.logand g legacy_bit) 0L -> Int64.add g 1L
  | Some _ | None -> 1L

(* --- crash-test hook --------------------------------------------------------- *)

(* FF_PERSIST_KILL_AFTER=k SIGKILLs the process right after the k-th
   shard-log write of this process (data fsynced, manifest not yet
   updated) — the window the store-recovery smoke test aims at. *)
let kill_after_env () =
  match Sys.getenv_opt "FF_PERSIST_KILL_AFTER" with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let shard_writes = Atomic.make 0

let kill_tick () =
  match kill_after_env () with
  | None -> ()
  | Some k ->
    if Atomic.fetch_and_add shard_writes 1 + 1 >= k then
      Unix.kill (Unix.getpid ()) Sys.sigkill

(* --- shard logs -------------------------------------------------------------- *)

let record_frame (record : Store.section_record) =
  let payload = Buffer.create 1024 in
  Wire.w_record payload record;
  Wire.frame (Buffer.contents payload)

(* Append a batch of framed records to a shard log in a single write —
   the magic rides along when the log is fresh, so a reader never sees a
   magic-less file — and fsync before the manifest may declare it. *)
let append_shard ~spath blob =
  let fd = Unix.openfile spath [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let data = if (Unix.fstat fd).Unix.st_size = 0 then magic_shard ^ blob else blob in
      let len = String.length data in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring fd data !off (len - !off)
      done;
      Unix.fsync fd);
  kill_tick ()

let write_shard ~spath records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_shard;
  List.iter (fun record -> Buffer.add_string buf (record_frame record)) records;
  write_atomic ~path:spath (Buffer.contents buf);
  kill_tick ()

(* Decode a log's frame payloads into records, in file order; corrupt or
   trailing-garbage payloads count as skips. *)
let decode_shard_payloads payloads =
  let skips = ref 0 in
  let entries =
    List.filter_map
      (fun payload ->
        match
          let c = Wire.cursor payload in
          let record = Wire.r_record c in
          if Wire.at_end c then Some record else None
        with
        | Some record -> Some (payload, record)
        | None ->
          incr skips;
          None
        | exception Wire.Corrupt _ ->
          incr skips;
          None)
      payloads
  in
  (entries, !skips)

type shard_info = {
  sh_index : int;
  sh_bytes : int;
  sh_frames : int;  (* structurally valid record frames, dead ones included *)
  sh_live : int;  (* distinct keys (last frame wins) *)
  sh_skipped : int;
}

let load_shard store ~index ~declared spath =
  match read_file spath with
  | Error _ ->
    { sh_index = index; sh_bytes = 0; sh_frames = 0; sh_live = 0;
      sh_skipped = (if declared > 0 then declared else 0) }
  | Ok data ->
    let magic_ok = has_magic data magic_shard in
    let pos = if magic_ok then String.length magic_shard else 0 in
    let frames, frame_skips = Wire.read_frames ~pos data in
    let entries, decode_skips = decode_shard_payloads frames in
    let keys = Hashtbl.create 16 in
    List.iter
      (fun (_, (record : Store.section_record)) ->
        (* File order: a later delta frame for the same key wins. *)
        Store.add_clean store record;
        Hashtbl.replace keys record.Store.rec_key ())
      entries;
    let actual = List.length entries in
    { sh_index = index;
      sh_bytes = String.length data;
      sh_frames = actual;
      sh_live = Hashtbl.length keys;
      sh_skipped =
        (if magic_ok then 0 else 1)
        + frame_skips + decode_skips
        + max 0 (declared - actual) }

(* --- load -------------------------------------------------------------------- *)

let load_v2 data =
  let frames, frame_skips = Wire.read_frames ~pos:(String.length magic_v2 + 8) data in
  let store = Store.create () in
  let decode_skips = ref 0 in
  List.iter
    (fun payload ->
      match
        let c = Wire.cursor payload in
        let record = Wire.r_record c in
        if Wire.at_end c then Some record else None
      with
      | Some record -> Store.add_clean store record
      | None -> incr decode_skips
      | exception Wire.Corrupt _ -> incr decode_skips)
    frames;
  (* The declared record count catches what frame CRCs cannot: a clean
     truncation that removes whole trailing frames. A corrupted count is
     itself CRC-less, so only trust it when plausible. *)
  let declared =
    let c = Wire.cursor ~pos:(String.length magic_v2) data in
    match Wire.r_length c "record count" with
    | n -> Some n
    | exception Wire.Corrupt _ -> None
  in
  let skipped = frame_skips + !decode_skips in
  let skipped =
    match declared with
    | Some n when n > Store.size store -> max skipped (n - Store.size store)
    | Some _ | None -> skipped
  in
  Ok (store, skipped)

let load_v1 data =
  let c = Wire.cursor ~pos:(String.length magic_v1) data in
  match Wire.r_length c "record count" with
  | exception Wire.Corrupt what -> Error ("corrupt store file: " ^ what)
  | count ->
    let store = Store.create () in
    let corrupt = ref false in
    (try
       for _ = 1 to count do
         Store.add_clean store (Wire.r_record c)
       done
     with Wire.Corrupt _ -> corrupt := true);
    let skipped = count - Store.size store in
    (* Trailing bytes after a fully-parsed v1 store are corruption too;
       report them as one skip so [--strict-store] notices. *)
    let skipped = if (not !corrupt) && not (Wire.at_end c) then skipped + 1 else skipped in
    Ok (store, skipped)

(* One full decode of whatever sits at [path], shared by [load]/[stat]/
   [compact]. *)
type scan = {
  sc_format : string;
  sc_store : Store.t;
  sc_generation : int64;
  sc_shards : int;
  sc_manifest_bytes : int;
  sc_per_shard : shard_info list;
  sc_skipped : int;
}

let sum_skips infos = List.fold_left (fun acc s -> acc + s.sh_skipped) 0 infos

(* The manifest is unreadable (or its magic was destroyed while healthy
   shard logs sit next to it): recover every record the logs still hold
   by probing all possible shard indices. The lost manifest counts as one
   skipped region; without its declared counts, a cleanly truncated log
   tail can no longer be detected — the price of losing it. *)
let salvage_scan ~manifest_bytes path store =
  let infos =
    List.filter_map
      (fun i ->
        let spath = shard_path path i in
        if Sys.file_exists spath then Some (load_shard store ~index:i ~declared:0 spath)
        else None)
      (List.init max_shards Fun.id)
  in
  { sc_format = magic_v3;
    sc_store = store;
    sc_generation = 0L;
    sc_shards = List.fold_left (fun acc s -> max acc (s.sh_index + 1)) 0 infos;
    sc_manifest_bytes = manifest_bytes;
    sc_per_shard = infos;
    sc_skipped = 1 + sum_skips infos }

let legacy_scan format path data store skipped =
  let n = Store.size store in
  { sc_format = format;
    sc_store = store;
    sc_generation = legacy_generation path;
    sc_shards = 1;
    sc_manifest_bytes = 0;
    sc_per_shard =
      [ { sh_index = 0; sh_bytes = String.length data; sh_frames = n;
          sh_live = n; sh_skipped = skipped } ];
    sc_skipped = skipped }

let shard_salvageable path =
  let rec go i =
    i < max_shards
    && ((match read_prefix (shard_path path i) 8 with
        | Ok m -> String.equal m magic_shard
        | Error _ -> false)
       || go (i + 1))
  in
  go 0

let read_store ~path =
  match read_file path with
  | Error e ->
    (* No manifest at all, but shard logs on disk: a writer died between
       its first shard write and the first manifest write. Everything
       fsynced into the logs is recoverable. *)
    if (not (Sys.file_exists path)) && shard_salvageable path then
      Ok (salvage_scan ~manifest_bytes:0 path (Store.create ()))
    else Error e
  | Ok data ->
    if has_magic data magic_v3 then begin
      let store = Store.create () in
      match decode_manifest data with
      | Some mf ->
        let infos =
          List.init mf.mf_shards (fun i ->
              load_shard store ~index:i ~declared:mf.mf_frames.(i) (shard_path path i))
        in
        Ok
          { sc_format = magic_v3;
            sc_store = store;
            sc_generation = mf.mf_generation;
            sc_shards = mf.mf_shards;
            sc_manifest_bytes = String.length data;
            sc_per_shard = infos;
            sc_skipped = sum_skips infos }
      | None -> Ok (salvage_scan ~manifest_bytes:(String.length data) path store)
    end
    else if has_magic data magic_v2 then
      Result.map (fun (store, skipped) -> legacy_scan magic_v2 path data store skipped) (load_v2 data)
    else if has_magic data magic_v1 then
      Result.map (fun (store, skipped) -> legacy_scan magic_v1 path data store skipped) (load_v1 data)
    else if shard_salvageable path then
      Ok (salvage_scan ~manifest_bytes:(String.length data) path (Store.create ()))
    else Error "not a FastFlip store file"

let present ~path = Sys.file_exists path || shard_salvageable path

let load_v ~path =
  Telemetry.incr m_loads;
  match read_store ~path with
  | Error e -> Error e
  | Ok sc ->
    Telemetry.add m_loaded (Store.size sc.sc_store);
    Telemetry.add m_skipped sc.sc_skipped;
    Ok (sc.sc_store, sc.sc_skipped, sc.sc_generation)

let load ~path = Result.map (fun (store, skipped, _) -> (store, skipped)) (load_v ~path)

let generation ~path =
  match classify path with
  | D_v3 -> Some (match read_manifest path with Some mf -> mf.mf_generation | None -> 0L)
  | D_v2 | D_v1 -> Some (legacy_generation path)
  | D_missing | D_other -> None

(* --- stat -------------------------------------------------------------------- *)

type info = {
  st_format : string;
  st_shards : int;
  st_generation : int64;
  st_live : int;
  st_dead : int;
  st_bytes : int;
  st_skipped : int;
  st_per_shard : shard_info list;
}

let stat ~path =
  match read_store ~path with
  | Error e -> Error e
  | Ok sc ->
    let frames = List.fold_left (fun acc s -> acc + s.sh_frames) 0 sc.sc_per_shard in
    let bytes =
      sc.sc_manifest_bytes + List.fold_left (fun acc s -> acc + s.sh_bytes) 0 sc.sc_per_shard
    in
    let live = Store.size sc.sc_store in
    Ok
      { st_format = sc.sc_format;
        st_shards = sc.sc_shards;
        st_generation = sc.sc_generation;
        st_live = live;
        st_dead = max 0 (frames - live);
        st_bytes = bytes;
        st_skipped = sc.sc_skipped;
        st_per_shard = sc.sc_per_shard }

(* --- save -------------------------------------------------------------------- *)

type save_stats = {
  sv_appended : int;
  sv_live : int;
  sv_compacted : int;
  sv_generation : int64;
}

(* Rewrite shard [i] down to its live records. The new content is staged
   in memory here and only renamed into place after the manifest already
   declares the smaller count, preserving declared <= actual for any
   concurrent reader. The surviving records keep their original payload
   bytes — compaction never re-encodes. *)
let stage_compaction path i =
  let spath = shard_path path i in
  match read_file spath with
  | Error _ -> None
  | Ok data ->
    let pos = if has_magic data magic_shard then String.length magic_shard else 0 in
    let frames, _ = Wire.read_frames ~pos data in
    let entries, _ = decode_shard_payloads frames in
    let last = Hashtbl.create 64 in
    List.iteri
      (fun idx (payload, (record : Store.section_record)) ->
        Hashtbl.replace last record.Store.rec_key (idx, payload))
      entries;
    let live = Hashtbl.fold (fun _ entry acc -> entry :: acc) last [] in
    let live = List.sort (fun (a, _) (b, _) -> compare (a : int) b) live in
    let buf = Buffer.create (String.length data) in
    Buffer.add_string buf magic_shard;
    List.iter (fun (_, payload) -> Wire.add_frame buf payload) live;
    Some (i, Buffer.contents buf, List.length live)

(* Incremental path: [path] already holds a v3 store with layout [mf0].
   Appends the dirty records to their shard logs under the per-shard
   locks, then folds the frame-count deltas into the manifest under the
   manifest lock — O(dirty) I/O, no read of the existing records.
   [`Retry] means the layout changed underneath us (a concurrent reshard)
   and the caller should re-classify; nothing was cleaned, so no record
   is lost. *)
let save_v3 store ~path (mf0 : manifest) =
  let shards = mf0.mf_shards in
  let dirty = Store.dirty_records store in
  if dirty = [] then
    `Done
      { sv_appended = 0; sv_live = Store.size store; sv_compacted = 0;
        sv_generation = mf0.mf_generation }
  else begin
    let buckets = Array.make shards [] in
    List.iter
      (fun (record : Store.section_record) ->
        let i = shard_of ~shards record.Store.rec_key in
        buckets.(i) <- record :: buckets.(i))
      dirty;
    let dirty_shards = ref [] in
    for i = shards - 1 downto 0 do
      if buckets.(i) <> [] then dirty_shards := i :: !dirty_shards
    done;
    let dirty_shards = !dirty_shards in
    (* What the in-memory store believes lives in each dirty shard — the
       compaction trigger's live-count estimate. *)
    let live_est = Array.make shards 0 in
    List.iter
      (fun (record : Store.section_record) ->
        let i = shard_of ~shards record.Store.rec_key in
        live_est.(i) <- live_est.(i) + 1)
      (Store.records store);
    with_locks (List.map (shard_lockfile path) dirty_shards) @@ fun () ->
    match read_manifest path with
    | None -> `Retry
    | Some mf when mf.mf_shards <> shards -> `Retry
    | Some mf ->
      List.iter
        (fun i ->
          let blob = String.concat "" (List.rev_map record_frame buckets.(i)) in
          append_shard ~spath:(shard_path path i) blob;
          Telemetry.incr m_appends)
        dirty_shards;
      Telemetry.add m_appended (List.length dirty);
      let staged =
        List.filter_map
          (fun i ->
            let count = mf.mf_frames.(i) + List.length buckets.(i) in
            if count >= compact_min_frames && count > 2 * live_est.(i) then
              stage_compaction path i
            else None)
          dirty_shards
      in
      let outcome =
        with_lock ~lockfile:(path ^ ".lock") @@ fun () ->
        match read_manifest path with
        | Some cur when cur.mf_shards <> shards -> `Retry
        | current ->
          (* [None] here means the manifest was corrupted underneath us
             (a crashed writer): restore our last-known view plus the
             deltas rather than lose the layout. *)
          let cur = match current with Some cur -> cur | None -> mf in
          let frames = Array.copy cur.mf_frames in
          List.iter
            (fun i -> frames.(i) <- frames.(i) + List.length buckets.(i))
            dirty_shards;
          List.iter (fun (i, _, live) -> frames.(i) <- live) staged;
          let gen = Int64.add cur.mf_generation 1L in
          write_atomic ~path
            (encode_manifest { mf_shards = shards; mf_generation = gen; mf_frames = frames });
          `Gen gen
      in
      (match outcome with
      | `Retry -> `Retry
      | `Gen gen ->
        List.iter
          (fun (i, content, _) ->
            write_atomic ~path:(shard_path path i) content;
            Telemetry.incr m_compactions)
          staged;
        Store.clean store dirty;
        `Done
          { sv_appended = List.length dirty;
            sv_live = Store.size store;
            sv_compacted = List.length staged;
            sv_generation = gen })
  end

(* Full-write path: fresh stores, migration from v1/v2, salvage of a
   store whose manifest was destroyed, and reshards. Writes every shard
   log of the target layout (so stale logs from a previous layout cannot
   resurrect deleted records), then declares them in the manifest. *)
let write_full ~path ~shards ~gen records =
  let buckets = Array.make shards [] in
  List.iter
    (fun (record : Store.section_record) ->
      let i = shard_of ~shards record.Store.rec_key in
      buckets.(i) <- record :: buckets.(i))
    records;
  let frames = Array.make shards 0 in
  for i = 0 to shards - 1 do
    let rs = List.rev buckets.(i) in
    frames.(i) <- List.length rs;
    write_shard ~spath:(shard_path path i) rs
  done;
  for i = shards to max_shards - 1 do
    try Sys.remove (shard_path path i) with Sys_error _ -> ()
  done;
  with_lock ~lockfile:(path ^ ".lock") (fun () ->
      write_atomic ~path (encode_manifest { mf_shards = shards; mf_generation = gen; mf_frames = frames }))

let save_rebuild ?known_generation ~shards ~lock_hi store ~path =
  with_locks (List.init lock_hi (shard_lockfile path)) @@ fun () ->
  let ours = Store.records store in
  let disk_state = classify path in
  let records, gen =
    match disk_state with
    | D_missing -> (ours, 1L)
    (* Something unrecognizable at [path]: replace it, as the monolithic
       writer always did. *)
    | D_other -> (ours, 1L)
    | D_v3 | D_v2 | D_v1 ->
      let disk_gen = generation ~path in
      if known_generation <> None && known_generation = disk_gen then begin
        (* The caller proved it has already seen everything on disk —
           the whole point of the generation hint: skip the merge load. *)
        Telemetry.incr m_gen_skips;
        (ours, next_generation disk_gen)
      end
      else begin
        Telemetry.incr m_loads;
        match read_store ~path with
        | Error _ -> (ours, 1L)
        | Ok sc ->
          (* Merge-don't-clobber: fold in whatever another writer put on
             disk since we loaded, our records winning on collisions. *)
          let mine = Hashtbl.create 64 in
          List.iter
            (fun (record : Store.section_record) -> Hashtbl.replace mine record.Store.rec_key ())
            ours;
          let extra =
            List.filter
              (fun (record : Store.section_record) -> not (Hashtbl.mem mine record.Store.rec_key))
              (Store.records sc.sc_store)
          in
          if extra <> [] then Telemetry.add m_merged (List.length extra);
          (extra @ ours, next_generation (Some sc.sc_generation))
      end
  in
  (match disk_state with
  | D_v2 | D_v1 -> Telemetry.incr m_migrations
  | D_v3 | D_missing | D_other -> ());
  write_full ~path ~shards ~gen records;
  Store.clean store records;
  { sv_appended = List.length records;
    sv_live = Store.size store;
    sv_compacted = 0;
    sv_generation = gen }

let save ?known_generation ?(shards = default_shards) store ~path =
  check_shards "Persist.save" shards;
  Telemetry.incr m_saves;
  let rebuild lock_hi = save_rebuild ?known_generation ~shards ~lock_hi store ~path in
  let rec attempt tries =
    match classify path with
    | D_v3 -> (
      match read_manifest path with
      | Some mf -> (
        match save_v3 store ~path mf with
        | `Done stats -> stats
        | `Retry when tries > 0 -> attempt (tries - 1)
        | `Retry -> (
          match read_manifest path with
          | Some mf -> rebuild (max shards mf.mf_shards)
          | None -> rebuild max_shards))
      | None ->
        (* v3 magic but an unreadable manifest frame: rebuild the layout,
           salvaging whatever the shard logs still hold. *)
        rebuild max_shards)
    | D_v2 | D_v1 | D_missing | D_other -> rebuild shards
  in
  attempt 4

(* --- explicit compaction ------------------------------------------------------ *)

type compact_stats = {
  cp_live : int;
  cp_dropped : int;
  cp_shards : int;
  cp_generation : int64;
}

let compact ?shards ~path () =
  (match shards with Some s -> check_shards "Persist.compact" s | None -> ());
  match classify path with
  | D_missing -> Error (path ^ ": no such store")
  | D_other -> Error "not a FastFlip store file"
  | (D_v3 | D_v2 | D_v1) as format ->
    let current =
      match read_manifest path with Some mf -> Some mf.mf_shards | None -> None
    in
    let target =
      match (shards, current) with
      | Some s, _ -> s
      | None, Some n -> n
      | None, None -> default_shards
    in
    let lock_hi =
      match current with
      | Some n -> max n target
      | None -> ( match format with D_v3 -> max_shards | _ -> target)
    in
    with_locks (List.init lock_hi (shard_lockfile path)) @@ fun () ->
    (match read_store ~path with
    | Error e -> Error e
    | Ok sc ->
      let records = Store.records sc.sc_store in
      let live = List.length records in
      let frames = List.fold_left (fun acc s -> acc + s.sh_frames) 0 sc.sc_per_shard in
      let gen = next_generation (Some sc.sc_generation) in
      write_full ~path ~shards:target ~gen records;
      Telemetry.add m_compactions target;
      Ok { cp_live = live; cp_dropped = max 0 (frames - live); cp_shards = target; cp_generation = gen })

(* --- legacy writers ----------------------------------------------------------- *)

let encode_v2 store =
  let records = Store.records store in
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic_v2;
  Wire.w_int buf (List.length records);
  List.iter
    (fun record ->
      let payload = Buffer.create 1024 in
      Wire.w_record payload record;
      Wire.add_frame buf (Buffer.contents payload))
    records;
  Buffer.contents buf

(* Legacy writers: kept so compatibility fixtures (and downgrade tooling)
   can produce real FFSTORE1/FFSTORE2 files; [save] always writes v3. *)
let save_legacy_v2 store ~path = write_atomic ~path (encode_v2 store)

let save_legacy_v1 store ~path =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic_v1;
  Wire.w_list buf Wire.w_record (Store.records store);
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

(* --- structural equality (tests) --------------------------------------------- *)

module Outcome = Ff_inject.Outcome
module Campaign = Ff_inject.Campaign
module Sensitivity = Ff_sensitivity.Sensitivity

let float_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let outcome_equal a b =
  match (a, b) with
  | Outcome.S_detected x, Outcome.S_detected y -> x = y
  | Outcome.S_sdc xs, Outcome.S_sdc ys ->
    Array.length xs = Array.length ys
    && Array.for_all2 (fun (i, m) (j, n) -> i = j && float_equal m n) xs ys
  | Outcome.S_detected _, Outcome.S_sdc _ | Outcome.S_sdc _, Outcome.S_detected _ ->
    false

let sensitivity_equal (a : Sensitivity.t) (b : Sensitivity.t) =
  a.Sensitivity.section_index = b.Sensitivity.section_index
  && a.Sensitivity.input_buffers = b.Sensitivity.input_buffers
  && a.Sensitivity.output_buffers = b.Sensitivity.output_buffers
  && a.Sensitivity.samples_used = b.Sensitivity.samples_used
  && a.Sensitivity.work = b.Sensitivity.work
  && Array.length a.Sensitivity.k = Array.length b.Sensitivity.k
  && Array.for_all2
       (fun ra rb -> Array.length ra = Array.length rb && Array.for_all2 float_equal ra rb)
       a.Sensitivity.k b.Sensitivity.k

let roundtrip_equal (a : Store.section_record) (b : Store.section_record) =
  a.Store.rec_key = b.Store.rec_key
  && a.Store.rec_work = b.Store.rec_work
  && a.Store.rec_campaign.Campaign.section_index
     = b.Store.rec_campaign.Campaign.section_index
  && a.Store.rec_campaign.Campaign.s_work = b.Store.rec_campaign.Campaign.s_work
  && a.Store.rec_campaign.Campaign.s_injections
     = b.Store.rec_campaign.Campaign.s_injections
  && a.Store.rec_campaign.Campaign.s_sites = b.Store.rec_campaign.Campaign.s_sites
  && Array.length a.Store.rec_campaign.Campaign.s_classes
     = Array.length b.Store.rec_campaign.Campaign.s_classes
  && Array.for_all2
       (fun (ca, oa) (cb, ob) -> ca = cb && outcome_equal oa ob)
       a.Store.rec_campaign.Campaign.s_classes b.Store.rec_campaign.Campaign.s_classes
  && sensitivity_equal a.Store.rec_sensitivity b.Store.rec_sensitivity
