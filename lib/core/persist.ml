module Telemetry = Ff_support.Telemetry

(* Salvage and write-path telemetry: how often the store survives a
   corrupt file, and how much it loses when it does. *)
let m_saves = Telemetry.counter "persist.saves"
let m_merged = Telemetry.counter "persist.saves.merged_records"
let m_loads = Telemetry.counter "persist.loads"
let m_loaded = Telemetry.counter "persist.records_loaded"
let m_skipped = Telemetry.counter "persist.records_skipped"

let magic_v2 = "FFSTORE2"
let magic_v1 = "FFSTORE1"

(* --- file primitives -------------------------------------------------------- *)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> Ok data
  | exception Sys_error e -> Error e
  (* A concurrent truncation between [in_channel_length] and the read
     surfaces as End_of_file, not Sys_error — fail cleanly, don't leak. *)
  | exception End_of_file -> Error (path ^ ": truncated while reading")

(* Crash-safe replacement: write a sibling temp file, fsync it, then
   rename over the target. Readers see either the old store or the new
   one, never a half-written hybrid; a crash mid-save leaves the previous
   store untouched. *)
let write_atomic ~path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  (try
     Fun.protect
       ~finally:(fun () -> Unix.close fd)
       (fun () ->
         let len = String.length data in
         let off = ref 0 in
         while !off < len do
           off := !off + Unix.write_substring fd data !off (len - !off)
         done;
         Unix.fsync fd)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  (* Best-effort directory sync so the rename itself survives power loss;
     not all filesystems support it, so failures are ignored. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | dirfd ->
    (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
    Unix.close dirfd
  | exception Unix.Unix_error _ -> ()

(* Advisory writer lock ([path].lock): two concurrent fastflip processes
   saving to the same store serialize here, and because [save] re-reads
   and merges under the lock, the second writer folds the first writer's
   records in instead of clobbering them. *)
let with_lock ~path f =
  let fd = Unix.openfile (path ^ ".lock") [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
      Unix.close fd)
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      f ())

(* --- load ------------------------------------------------------------------- *)

let load_v2 data =
  let frames, frame_skips = Wire.read_frames ~pos:(String.length magic_v2 + 8) data in
  let store = Store.create () in
  let decode_skips = ref 0 in
  List.iter
    (fun payload ->
      match
        let c = Wire.cursor payload in
        let record = Wire.r_record c in
        if Wire.at_end c then Some record else None
      with
      | Some record -> Store.add store record
      | None -> incr decode_skips
      | exception Wire.Corrupt _ -> incr decode_skips)
    frames;
  (* The declared record count catches what frame CRCs cannot: a clean
     truncation that removes whole trailing frames. A corrupted count is
     itself CRC-less, so only trust it when plausible. *)
  let declared =
    let c = Wire.cursor ~pos:(String.length magic_v2) data in
    match Wire.r_length c "record count" with
    | n -> Some n
    | exception Wire.Corrupt _ -> None
  in
  let skipped = frame_skips + !decode_skips in
  let skipped =
    match declared with
    | Some n when n > Store.size store -> max skipped (n - Store.size store)
    | Some _ | None -> skipped
  in
  Ok (store, skipped)

let load_v1 data =
  let c = Wire.cursor ~pos:(String.length magic_v1) data in
  match Wire.r_length c "record count" with
  | exception Wire.Corrupt what -> Error ("corrupt store file: " ^ what)
  | count ->
    let store = Store.create () in
    let corrupt = ref false in
    (try
       for _ = 1 to count do
         Store.add store (Wire.r_record c)
       done
     with Wire.Corrupt _ -> corrupt := true);
    let skipped = count - Store.size store in
    (* Trailing bytes after a fully-parsed v1 store are corruption too;
       report them as one skip so [--strict-store] notices. *)
    let skipped = if (not !corrupt) && not (Wire.at_end c) then skipped + 1 else skipped in
    Ok (store, skipped)

let load ~path =
  Telemetry.incr m_loads;
  match read_file path with
  | Error e -> Error e
  | Ok data ->
    let has_magic magic =
      String.length data >= String.length magic
      && String.equal (String.sub data 0 (String.length magic)) magic
    in
    let result =
      if has_magic magic_v2 then load_v2 data
      else if has_magic magic_v1 then load_v1 data
      else Error "not a FastFlip store file"
    in
    (match result with
    | Ok (store, skipped) ->
      Telemetry.add m_loaded (Store.size store);
      Telemetry.add m_skipped skipped
    | Error _ -> ());
    result

(* --- save ------------------------------------------------------------------- *)

let encode store =
  let records = Store.records store in
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic_v2;
  Wire.w_int buf (List.length records);
  List.iter
    (fun record ->
      let payload = Buffer.create 1024 in
      Wire.w_record payload record;
      Wire.add_frame buf (Buffer.contents payload))
    records;
  Buffer.contents buf

let save store ~path =
  Telemetry.incr m_saves;
  with_lock ~path @@ fun () ->
  (* Merge-don't-clobber: fold in whatever another writer put on disk
     since we loaded, with our own records winning on key collisions. *)
  let merged =
    if not (Sys.file_exists path) then store
    else
      match load ~path with
      | Error _ -> store
      | Ok (disk, _) ->
        let ours = Store.records store in
        let mine = Hashtbl.create 64 in
        List.iter (fun (r : Store.section_record) -> Hashtbl.replace mine r.Store.rec_key ()) ours;
        let extra =
          List.filter
            (fun (r : Store.section_record) -> not (Hashtbl.mem mine r.Store.rec_key))
            (Store.records disk)
        in
        if extra = [] then store
        else begin
          Telemetry.add m_merged (List.length extra);
          let m = Store.create () in
          List.iter (Store.add m) extra;
          List.iter (Store.add m) ours;
          m
        end
  in
  write_atomic ~path (encode merged);
  Store.size merged

(* Legacy writer: kept only so compatibility fixtures (and downgrade
   tooling) can produce real FFSTORE1 files; [save] always writes v2. *)
let save_legacy_v1 store ~path =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic_v1;
  Wire.w_list buf Wire.w_record (Store.records store);
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

(* --- structural equality (tests) --------------------------------------------- *)

module Outcome = Ff_inject.Outcome
module Campaign = Ff_inject.Campaign
module Sensitivity = Ff_sensitivity.Sensitivity

let float_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let outcome_equal a b =
  match (a, b) with
  | Outcome.S_detected x, Outcome.S_detected y -> x = y
  | Outcome.S_sdc xs, Outcome.S_sdc ys ->
    Array.length xs = Array.length ys
    && Array.for_all2 (fun (i, m) (j, n) -> i = j && float_equal m n) xs ys
  | Outcome.S_detected _, Outcome.S_sdc _ | Outcome.S_sdc _, Outcome.S_detected _ ->
    false

let sensitivity_equal (a : Sensitivity.t) (b : Sensitivity.t) =
  a.Sensitivity.section_index = b.Sensitivity.section_index
  && a.Sensitivity.input_buffers = b.Sensitivity.input_buffers
  && a.Sensitivity.output_buffers = b.Sensitivity.output_buffers
  && a.Sensitivity.samples_used = b.Sensitivity.samples_used
  && a.Sensitivity.work = b.Sensitivity.work
  && Array.length a.Sensitivity.k = Array.length b.Sensitivity.k
  && Array.for_all2
       (fun ra rb -> Array.length ra = Array.length rb && Array.for_all2 float_equal ra rb)
       a.Sensitivity.k b.Sensitivity.k

let roundtrip_equal (a : Store.section_record) (b : Store.section_record) =
  a.Store.rec_key = b.Store.rec_key
  && a.Store.rec_work = b.Store.rec_work
  && a.Store.rec_campaign.Campaign.section_index
     = b.Store.rec_campaign.Campaign.section_index
  && a.Store.rec_campaign.Campaign.s_work = b.Store.rec_campaign.Campaign.s_work
  && a.Store.rec_campaign.Campaign.s_injections
     = b.Store.rec_campaign.Campaign.s_injections
  && a.Store.rec_campaign.Campaign.s_sites = b.Store.rec_campaign.Campaign.s_sites
  && Array.length a.Store.rec_campaign.Campaign.s_classes
     = Array.length b.Store.rec_campaign.Campaign.s_classes
  && Array.for_all2
       (fun (ca, oa) (cb, ob) -> ca = cb && outcome_equal oa ob)
       a.Store.rec_campaign.Campaign.s_classes b.Store.rec_campaign.Campaign.s_classes
  && sensitivity_equal a.Store.rec_sensitivity b.Store.rec_sensitivity
