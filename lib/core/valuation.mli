(** Value and cost of protecting static instructions (paper §4.5, §5.3,
    Algorithm 2).

    The value v(pc) is the number of injected errors at pc whose outcome
    is SDC-Bad — under the uniform error-site distribution this is the
    un-normalized probability of Algorithm 2, kept as exact integer site
    counts. The cost c(pc) is the number of dynamic instances of pc in
    the golden trace (the §5.3 instruction-duplication cost model).

    Two constructors mirror the two analyses: {!of_fastflip} labels each
    per-section injection by pushing its section-output SDC magnitudes
    through the Chisel specification (the RHS of Equation 4) and comparing
    with ε; {!of_baseline} labels end-to-end outcomes directly. *)

type class_label = {
  cls : Ff_inject.Eqclass.t;
  bad : bool;  (** SDC-Bad under this valuation's labels *)
}

type t = {
  epsilon : float;
  values : (Ff_inject.Site.pc * int) list;
  (** per-pc SDC-Bad site counts, deterministic pc order, zeros omitted *)
  total_value : int;   (** Σ v(pc): every SDC-Bad site once *)
  costs : (Ff_inject.Site.pc * int) list;
  (** per-pc dynamic instance counts over the whole golden trace *)
  total_cost : int;    (** total dynamic instructions of the trace *)
  labels : class_label list;
}

val value_of : t -> Ff_inject.Site.pc -> int

val cost_of : t -> Ff_inject.Site.pc -> int

val of_fastflip :
  Ff_vm.Golden.t ->
  propagation:Ff_chisel.Propagate.t ->
  sections:Ff_inject.Campaign.section_result array ->
  epsilon:float ->
  t
(** Requires one campaign result per schedule section. *)

val of_baseline :
  Ff_vm.Golden.t ->
  baseline:Ff_inject.Campaign.baseline_result ->
  epsilon:float ->
  t

val with_untested : t -> (Ff_inject.Site.pc * int) list -> t
(** §4.9 untested error sites: the special section s⊥. Each (pc, count)
    adds [count] sites at [pc] that are conservatively assumed to always
    produce an SDC-Bad outcome (O(j) = (∞, …, ∞)); they join the value
    mass (and, if the pc is new, the cost table keeps its real dynamic
    count of 0 — protecting an untested site is free only if it never
    executes, which cannot happen for a real pc, so callers normally pass
    pcs already present in the trace). *)

val bad_labels_in_section : t -> section:int -> class_label list
(** The SDC-Bad labelled classes whose pilot lives in schedule section
    [section], in label order — the per-section work list for
    injection-measured detector coverage (each class replays once more,
    this time capturing the faulty section outputs). *)

val value_fraction : t -> selected:Ff_inject.Site.pc list -> float
(** Σ v(pc) over [selected] / total value (0 when the total is 0). *)

val cost_fraction : t -> selected:Ff_inject.Site.pc list -> float
(** Σ c(pc) over [selected] / total trace cost. *)

val pruned_bad_fraction : t -> selected:Ff_inject.Site.pc list -> float
(** Among this valuation's SDC-Bad value mass at the selected pcs, the
    fraction contributed by pruned (non-pilot) class members — the input
    to the §5.6 value error range. *)
