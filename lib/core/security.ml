open Ff_inject
module Golden = Ff_vm.Golden
module Instr = Ff_ir.Instr
module Kernel = Ff_ir.Kernel
module Program = Ff_ir.Program
module Pool = Ff_support.Pool
module Table = Ff_support.Table

(* Security campaign mode: the same end-to-end injection machinery as the
   Approxilyzer baseline, re-read under an attacker threat model. A fault
   the SDC analysis calls "bad" is an accuracy loss; under an attack
   model (instruction skip, targeted flips) the same outcome is a
   *silent* integrity violation — the program completed, nothing trapped,
   and the output differs from the golden one. Detected outcomes are
   failed attacks (the fault was loud), masked outcomes are absorbed
   ones; only silent corruption is damage.

   The valuation/knapsack machinery is reused verbatim: v(pc) counts the
   sites at pc whose injection silently corrupts the output beyond
   epsilon, c(pc) is the pc's dynamic instance count, and the knapsack
   answers "what to protect first" under the threat model exactly as it
   does under the reliability model. *)

type kind =
  | Check_bypass      (** corrupting a comparison, branch or select:
                          the classic skip-a-guard attack *)
  | State_corruption  (** memory traffic or entry-state flips: leaked or
                          overwritten state *)
  | Compute_corruption

let kind_to_string = function
  | Check_bypass -> "check-bypass"
  | State_corruption -> "state"
  | Compute_corruption -> "compute"

type finding = {
  f_pc : Site.pc;
  f_kind : kind;
  f_instr : string;    (** printed instruction, or the buffer for [Mem] *)
  f_bad_sites : int;   (** sites whose fault silently corrupts the output *)
  f_total_sites : int; (** all sites the model aims at this pc *)
}

type t = {
  s_model : Fault_model.t;
  s_epsilon : float;
  s_sites : int;
  s_classes : int;
  s_silent : int;    (** damage: silently corrupted beyond epsilon *)
  s_detected : int;  (** failed attacks: trap/timeout/misformatted *)
  s_masked : int;    (** absorbed: output unchanged (or within epsilon) *)
  s_findings : finding list;  (** descending damage, then pc order *)
  s_valuation : Valuation.t;
  s_solution : Knapsack.solution;
  s_work : int;
  s_injections : int;
}

let kernel_code golden =
  Array.of_list
    (List.map (fun k -> k.Kernel.code) golden.Golden.program.Program.kernels)

let instr_at code (pc : Site.pc) =
  let arr = code.(pc.Site.kernel) in
  if pc.Site.instr >= 0 && pc.Site.instr < Array.length arr then
    Some arr.(pc.Site.instr)
  else None

let kind_of code (cls : Eqclass.t) =
  match cls.Eqclass.operand with
  | Site.Mem _ -> State_corruption
  | Site.Src _ | Site.Dst | Site.Op -> (
    match instr_at code cls.Eqclass.pc with
    | Some (Instr.Icmp _ | Instr.Fcmp _ | Instr.Br _ | Instr.Select _) ->
      Check_bypass
    | Some (Instr.Load _ | Instr.Store _) -> State_corruption
    | Some _ | None -> Compute_corruption)

let instr_label golden code (cls : Eqclass.t) =
  match cls.Eqclass.operand with
  | Site.Mem b -> (
    let buffers = golden.Golden.program.Program.buffers in
    match List.nth_opt buffers b with
    | Some buf -> Printf.sprintf "buffer %s" buf.Program.buf_name
    | None -> Printf.sprintf "buffer #%d" b)
  | Site.Src _ | Site.Dst | Site.Op -> (
    match instr_at code cls.Eqclass.pc with
    | Some i -> Instr.to_string i
    | None -> "<out of range>")

let analyze ?pool ?engine ~epsilon golden (config : Campaign.config) =
  let baseline = Campaign.run_baseline ?pool ?engine golden config in
  let valuation = Valuation.of_baseline golden ~baseline ~epsilon in
  let code = kernel_code golden in
  let silent = ref 0 and detected = ref 0 and masked = ref 0 in
  Array.iter
    (fun (cls, outcome) ->
      let w = Eqclass.size cls in
      match (outcome : Outcome.final_outcome) with
      | Outcome.F_detected _ -> detected := !detected + w
      | Outcome.F_sdc _ ->
        if Outcome.final_is_bad ~epsilon outcome then silent := !silent + w
        else masked := !masked + w)
    baseline.Campaign.b_classes;
  (* Group the class labels per pc (the valuation already decided which
     are damage); keep the first class of a pc as its describer. *)
  let by_pc : (Site.pc, finding ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun { Valuation.cls; bad } ->
      let w = Eqclass.size cls in
      let f =
        match Hashtbl.find_opt by_pc cls.Eqclass.pc with
        | Some f -> f
        | None ->
          let f =
            ref
              {
                f_pc = cls.Eqclass.pc;
                f_kind = kind_of code cls;
                f_instr = instr_label golden code cls;
                f_bad_sites = 0;
                f_total_sites = 0;
              }
          in
          Hashtbl.add by_pc cls.Eqclass.pc f;
          order := f :: !order;
          f
      in
      f :=
        {
          !f with
          f_bad_sites = (!f).f_bad_sites + (if bad then w else 0);
          f_total_sites = (!f).f_total_sites + w;
        })
    valuation.Valuation.labels;
  let findings =
    List.rev_map (fun f -> !f) !order
    |> List.filter (fun f -> f.f_bad_sites > 0)
    |> List.sort (fun a b ->
           match compare b.f_bad_sites a.f_bad_sites with
           | 0 -> Site.compare_pc a.f_pc b.f_pc
           | c -> c)
  in
  let solution = Knapsack.solve (Knapsack.items_of_valuation valuation) in
  {
    s_model = config.Campaign.model;
    s_epsilon = epsilon;
    s_sites = baseline.Campaign.b_sites;
    s_classes = Array.length baseline.Campaign.b_classes;
    s_silent = !silent;
    s_detected = !detected;
    s_masked = !masked;
    s_findings = findings;
    s_valuation = valuation;
    s_solution = solution;
    s_work = baseline.Campaign.b_work;
    s_injections = baseline.Campaign.b_injections;
  }

let protect_first t ~target =
  let total = float_of_int t.s_valuation.Valuation.total_value in
  let integer_target = int_of_float (ceil (target *. total)) in
  Knapsack.select t.s_solution ~target:integer_target

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

(* Machine-readable findings: hand-rolled JSON exactly like Telemetry's
   export — sorted/deterministic content, no float formatting surprises
   (%.17g round-trips), no external dependency. The finding list is the
   seed input for detector placement ([fastflip protect
   --seed-security]), so the field set mirrors [finding] verbatim. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let findings_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"model\": \"%s\",\n"
       (json_escape (Fault_model.to_string t.s_model)));
  Buffer.add_string buf (Printf.sprintf "  \"epsilon\": %.17g,\n" t.s_epsilon);
  Buffer.add_string buf (Printf.sprintf "  \"sites\": %d,\n" t.s_sites);
  Buffer.add_string buf (Printf.sprintf "  \"classes\": %d,\n" t.s_classes);
  Buffer.add_string buf (Printf.sprintf "  \"silent\": %d,\n" t.s_silent);
  Buffer.add_string buf (Printf.sprintf "  \"detected\": %d,\n" t.s_detected);
  Buffer.add_string buf (Printf.sprintf "  \"masked\": %d,\n" t.s_masked);
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i f ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"kernel\": %d, \"instr\": %d, \"kind\": \"%s\", \
            \"silent_sites\": %d, \"total_sites\": %d, \"instruction\": \"%s\"}"
           f.f_pc.Site.kernel f.f_pc.Site.instr
           (kind_to_string f.f_kind)
           f.f_bad_sites f.f_total_sites (json_escape f.f_instr)))
    t.s_findings;
  Buffer.add_string buf (if t.s_findings = [] then "]\n" else "\n  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let report ?(target = 0.9) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "security campaign: model=%s epsilon=%g — %d sites in %d classes\n"
       (Fault_model.to_string t.s_model)
       t.s_epsilon t.s_sites t.s_classes);
  Buffer.add_string buf
    (Printf.sprintf
       "attack outcomes: %d silent corruptions (%.0f%%), %d detected \
        (%.0f%%), %d masked (%.0f%%)\n"
       t.s_silent (pct t.s_silent t.s_sites) t.s_detected
       (pct t.s_detected t.s_sites) t.s_masked (pct t.s_masked t.s_sites));
  if t.s_findings <> [] then begin
    let tbl =
      Table.create ~title:"vulnerable instructions (damage-first)"
        [
          ("Pc", Table.Left); ("Kind", Table.Left); ("Silent", Table.Right);
          ("Sites", Table.Right); ("Instruction", Table.Left);
        ]
    in
    List.iter
      (fun f ->
        Table.add_row tbl
          [
            Format.asprintf "%a" Site.pp_pc f.f_pc;
            kind_to_string f.f_kind;
            string_of_int f.f_bad_sites;
            string_of_int f.f_total_sites;
            f.f_instr;
          ])
      t.s_findings;
    Buffer.add_string buf (Table.render tbl);
    Buffer.add_char buf '\n'
  end;
  let sel = protect_first t ~target in
  (match sel.Knapsack.pcs with
  | [] ->
    Buffer.add_string buf
      "protect first: nothing to protect under this threat model\n"
  | pcs ->
    Buffer.add_string buf
      (Printf.sprintf
         "protect first (target %.2f): %s — %.0f%% of the damage at %.1f%% \
          of the trace\n"
         target
         (String.concat ", "
            (List.map (fun pc -> Format.asprintf "%a" Site.pp_pc pc) pcs))
         (pct sel.Knapsack.value t.s_valuation.Valuation.total_value)
         (100.0
         *. Valuation.cost_fraction t.s_valuation ~selected:sel.Knapsack.pcs)));
  Buffer.contents buf
