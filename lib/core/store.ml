module Telemetry = Ff_support.Telemetry

(* Process-wide mirrors of the per-store hit/miss fields: the paper's
   central incremental-reuse metric, exported via --metrics. *)
let m_hits = Telemetry.counter "store.hits"
let m_misses = Telemetry.counter "store.misses"
let m_adds = Telemetry.counter "store.adds"

type key = {
  code_hash : int64;
  input_hash : int64;
  config_hash : int64;
}

type section_record = {
  rec_key : key;
  rec_campaign : Ff_inject.Campaign.section_result;
  rec_sensitivity : Ff_sensitivity.Sensitivity.t;
  rec_work : int;
}

type t = {
  table : (key, section_record) Hashtbl.t;
  (* Keys added or replaced since the last save: the delta a sharded
     [Persist.save] appends, so a checkpoint costs O(dirty), not
     O(store). [Persist.load] populates the table without touching it. *)
  dirty : (key, unit) Hashtbl.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create () =
  {
    table = Hashtbl.create 64;
    dirty = Hashtbl.create 16;
    hit_count = 0;
    miss_count = 0;
  }

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some record ->
    t.hit_count <- t.hit_count + 1;
    Telemetry.incr m_hits;
    Some record
  | None ->
    t.miss_count <- t.miss_count + 1;
    Telemetry.incr m_misses;
    None

let peek t key = Hashtbl.find_opt t.table key

let add t record =
  Telemetry.incr m_adds;
  Hashtbl.replace t.table record.rec_key record;
  Hashtbl.replace t.dirty record.rec_key ()

let add_clean t record = Hashtbl.replace t.table record.rec_key record

let records t = Hashtbl.fold (fun _ record acc -> record :: acc) t.table []

let dirty_records t =
  Hashtbl.fold
    (fun key () acc ->
      match Hashtbl.find_opt t.table key with
      | Some record -> record :: acc
      | None -> acc)
    t.dirty []

let dirty_count t = Hashtbl.length t.dirty

let clean t written =
  List.iter
    (fun record ->
      match Hashtbl.find_opt t.table record.rec_key with
      | Some current when current == record -> Hashtbl.remove t.dirty record.rec_key
      | Some _ | None -> ())
    written

let size t = Hashtbl.length t.table

let hits t = t.hit_count

let misses t = t.miss_count
