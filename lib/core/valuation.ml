open Ff_inject
module Golden = Ff_vm.Golden
module Propagate = Ff_chisel.Propagate

type class_label = {
  cls : Eqclass.t;
  bad : bool;
}

type t = {
  epsilon : float;
  values : (Site.pc * int) list;
  total_value : int;
  costs : (Site.pc * int) list;
  total_cost : int;
  labels : class_label list;
}

let value_of t pc =
  match List.assoc_opt pc t.values with Some v -> v | None -> 0

let cost_of t pc =
  match List.assoc_opt pc t.costs with Some c -> c | None -> 0

(* c(pc): dynamic instances of every static instruction over the trace. *)
let costs_of_golden (golden : Golden.t) =
  let table : (Site.pc, int) Hashtbl.t = Hashtbl.create 256 in
  let total = ref 0 in
  Array.iter
    (fun (section : Golden.section_run) ->
      Array.iter
        (fun instr_idx ->
          let pc = { Site.kernel = section.Golden.kernel_index; instr = instr_idx } in
          Hashtbl.replace table pc (1 + Option.value ~default:0 (Hashtbl.find_opt table pc));
          incr total)
        section.Golden.trace)
    golden.Golden.sections;
  let costs =
    Hashtbl.fold (fun pc count acc -> (pc, count) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> Site.compare_pc a b)
  in
  (costs, !total)

let finish golden epsilon labels =
  let values_table : (Site.pc, int) Hashtbl.t = Hashtbl.create 256 in
  let total_value = ref 0 in
  List.iter
    (fun { cls; bad } ->
      if bad then begin
        let pc = cls.Eqclass.pc in
        let size = Eqclass.size cls in
        Hashtbl.replace values_table pc
          (size + Option.value ~default:0 (Hashtbl.find_opt values_table pc));
        total_value := !total_value + size
      end)
    labels;
  let values =
    Hashtbl.fold (fun pc v acc -> (pc, v) :: acc) values_table []
    |> List.sort (fun (a, _) (b, _) -> Site.compare_pc a b)
  in
  let costs, total_cost = costs_of_golden golden in
  { epsilon; values; total_value = !total_value; costs; total_cost; labels }

let of_fastflip golden ~propagation ~sections ~epsilon =
  if Array.length sections <> Array.length golden.Golden.sections then
    invalid_arg "Valuation.of_fastflip: one campaign result per section required";
  let outputs =
    Ff_ir.Program.output_buffers golden.Golden.program |> List.map fst
  in
  let labels =
    Array.to_list sections
    |> List.concat_map (fun (result : Campaign.section_result) ->
           let section = result.Campaign.section_index in
           Array.to_list result.Campaign.s_classes
           |> List.map (fun (cls, outcome) ->
                  let bad =
                    match (outcome : Outcome.section_outcome) with
                    | Outcome.S_detected _ -> false
                    | Outcome.S_sdc magnitudes ->
                      List.exists
                        (fun output ->
                          Propagate.bound_for_injection propagation ~output ~section
                            ~magnitudes
                          > epsilon)
                        outputs
                  in
                  { cls; bad }))
  in
  finish golden epsilon labels

let of_baseline golden ~baseline ~epsilon =
  let labels =
    Array.to_list baseline.Campaign.b_classes
    |> List.map (fun (cls, outcome) ->
           { cls; bad = Outcome.final_is_bad ~epsilon outcome })
  in
  finish golden epsilon labels

let with_untested t untested =
  let add_value values (pc, count) =
    let rec go = function
      | [] -> [ (pc, count) ]
      | (p, v) :: rest when p = pc -> (p, v + count) :: rest
      | entry :: rest -> entry :: go rest
    in
    go values
  in
  let values =
    List.fold_left add_value t.values untested
    |> List.sort (fun (a, _) (b, _) -> Site.compare_pc a b)
  in
  let extra = List.fold_left (fun acc (_, c) -> acc + c) 0 untested in
  { t with values; total_value = t.total_value + extra }

let bad_labels_in_section t ~section =
  List.filter
    (fun { cls; bad } -> bad && cls.Eqclass.pilot.Site.section = section)
    t.labels

let value_fraction t ~selected =
  if t.total_value = 0 then 0.0
  else begin
    let sum = List.fold_left (fun acc pc -> acc + value_of t pc) 0 selected in
    float_of_int sum /. float_of_int t.total_value
  end

let cost_fraction t ~selected =
  if t.total_cost = 0 then 0.0
  else begin
    let sum = List.fold_left (fun acc pc -> acc + cost_of t pc) 0 selected in
    float_of_int sum /. float_of_int t.total_cost
  end

let pruned_bad_fraction t ~selected =
  let selected_table = Hashtbl.create 64 in
  List.iter (fun pc -> Hashtbl.replace selected_table pc ()) selected;
  let total = ref 0 in
  let pruned = ref 0 in
  List.iter
    (fun { cls; bad } ->
      if bad && Hashtbl.mem selected_table cls.Eqclass.pc then begin
        let size = Eqclass.size cls in
        total := !total + size;
        pruned := !pruned + (size - 1)
      end)
    t.labels;
  if !total = 0 then 0.0 else float_of_int !pruned /. float_of_int !total
