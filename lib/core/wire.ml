module Site = Ff_inject.Site
module Eqclass = Ff_inject.Eqclass
module Outcome = Ff_inject.Outcome
module Campaign = Ff_inject.Campaign
module Sensitivity = Ff_sensitivity.Sensitivity
module Hashing = Ff_support.Hashing

(* --- primitive writers ------------------------------------------------------ *)

let w_int64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let w_int buf v = w_int64 buf (Int64.of_int v)
let w_float buf v = w_int64 buf (Int64.bits_of_float v)

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_array buf w_elem arr =
  w_int buf (Array.length arr);
  Array.iter (w_elem buf) arr

let w_list buf w_elem xs =
  w_int buf (List.length xs);
  List.iter (w_elem buf) xs

(* --- primitive readers ------------------------------------------------------ *)

exception Corrupt of string

type cursor = {
  data : string;
  mutable pos : int;
}

let cursor ?(pos = 0) data = { data; pos }

let at_end c = c.pos = String.length c.data

let r_int64 c =
  if c.pos + 8 > String.length c.data then raise (Corrupt "truncated int64");
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.data.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let r_int c = Int64.to_int (r_int64 c)
let r_float c = Int64.float_of_bits (r_int64 c)

let r_length c what =
  let n = r_int c in
  if n < 0 || n > 100_000_000 then raise (Corrupt ("implausible length for " ^ what));
  n

let r_string c what =
  let n = r_int c in
  if n < 0 || n > String.length c.data - c.pos then
    raise (Corrupt ("implausible byte length for " ^ what));
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let r_array c r_elem what =
  let n = r_length c what in
  Array.init n (fun _ -> r_elem c)

let r_list c r_elem what =
  let n = r_length c what in
  List.init n (fun _ -> r_elem c)

(* --- domain codecs ---------------------------------------------------------- *)

let w_pc buf (pc : Site.pc) =
  w_int buf pc.Site.kernel;
  w_int buf pc.Site.instr

let r_pc c =
  let kernel = r_int c in
  let instr = r_int c in
  { Site.kernel; instr }

let w_operand buf = function
  | Site.Src i ->
    w_int buf 0;
    w_int buf i
  | Site.Dst ->
    w_int buf 1;
    w_int buf 0
  | Site.Op ->
    w_int buf 2;
    w_int buf 0
  | Site.Mem b ->
    w_int buf 3;
    w_int buf b

let r_operand c =
  match r_int c with
  | 0 -> Site.Src (r_int c)
  | 1 ->
    ignore (r_int c);
    Site.Dst
  | 2 ->
    ignore (r_int c);
    Site.Op
  | 3 -> Site.Mem (r_int c)
  | _ -> raise (Corrupt "operand tag")

let w_site buf (site : Site.t) =
  w_int buf site.Site.section;
  w_int buf site.Site.dyn;
  w_pc buf site.Site.pc;
  w_operand buf site.Site.operand;
  w_int buf site.Site.bit

let r_site c =
  let section = r_int c in
  let dyn = r_int c in
  let pc = r_pc c in
  let operand = r_operand c in
  let bit = r_int c in
  { Site.section; dyn; pc; operand; bit }

let w_member buf (section, dyn) =
  w_int buf section;
  w_int buf dyn

let r_member c =
  let section = r_int c in
  let dyn = r_int c in
  (section, dyn)

let w_class buf (cls : Eqclass.t) =
  w_pc buf cls.Eqclass.pc;
  w_operand buf cls.Eqclass.operand;
  w_int buf cls.Eqclass.bit;
  w_array buf w_member cls.Eqclass.members;
  w_site buf cls.Eqclass.pilot

let r_class c =
  let pc = r_pc c in
  let operand = r_operand c in
  let bit = r_int c in
  let members = r_array c r_member "class members" in
  let pilot = r_site c in
  { Eqclass.pc; operand; bit; members; pilot }

let w_detected buf = function
  | Outcome.Crash -> w_int buf 0
  | Outcome.Timed_out -> w_int buf 1
  | Outcome.Misformatted -> w_int buf 2

let r_detected c =
  match r_int c with
  | 0 -> Outcome.Crash
  | 1 -> Outcome.Timed_out
  | 2 -> Outcome.Misformatted
  | _ -> raise (Corrupt "detected tag")

let w_magnitude buf (idx, m) =
  w_int buf idx;
  w_float buf m

let r_magnitude c =
  let idx = r_int c in
  let m = r_float c in
  (idx, m)

let w_section_outcome buf = function
  | Outcome.S_detected kind ->
    w_int buf 0;
    w_detected buf kind
  | Outcome.S_sdc magnitudes ->
    w_int buf 1;
    w_array buf w_magnitude magnitudes

let r_section_outcome c =
  match r_int c with
  | 0 -> Outcome.S_detected (r_detected c)
  | 1 -> Outcome.S_sdc (r_array c r_magnitude "magnitudes")
  | _ -> raise (Corrupt "outcome tag")

let w_campaign buf (camp : Campaign.section_result) =
  w_int buf camp.Campaign.section_index;
  w_array buf
    (fun buf (cls, outcome) ->
      w_class buf cls;
      w_section_outcome buf outcome)
    camp.Campaign.s_classes;
  w_int buf camp.Campaign.s_work;
  w_int buf camp.Campaign.s_injections;
  w_int buf camp.Campaign.s_sites

let r_campaign c =
  let section_index = r_int c in
  let s_classes =
    r_array c
      (fun c ->
        let cls = r_class c in
        let outcome = r_section_outcome c in
        (cls, outcome))
      "classes"
  in
  let s_work = r_int c in
  let s_injections = r_int c in
  let s_sites = r_int c in
  { Campaign.section_index; s_classes; s_work; s_injections; s_sites }

let w_sensitivity buf (s : Sensitivity.t) =
  w_int buf s.Sensitivity.section_index;
  w_array buf w_int s.Sensitivity.input_buffers;
  w_array buf w_int s.Sensitivity.output_buffers;
  w_array buf (fun buf row -> w_array buf w_float row) s.Sensitivity.k;
  w_int buf s.Sensitivity.samples_used;
  w_int buf s.Sensitivity.work

let r_sensitivity c =
  let section_index = r_int c in
  let input_buffers = r_array c r_int "inputs" in
  let output_buffers = r_array c r_int "outputs" in
  let k = r_array c (fun c -> r_array c r_float "k row") "k" in
  let samples_used = r_int c in
  let work = r_int c in
  { Sensitivity.section_index; input_buffers; output_buffers; k; samples_used; work }

let w_key buf (key : Store.key) =
  w_int64 buf key.Store.code_hash;
  w_int64 buf key.Store.input_hash;
  w_int64 buf key.Store.config_hash

let r_key c =
  let code_hash = r_int64 c in
  let input_hash = r_int64 c in
  let config_hash = r_int64 c in
  { Store.code_hash; input_hash; config_hash }

let w_record buf (r : Store.section_record) =
  w_key buf r.Store.rec_key;
  w_campaign buf r.Store.rec_campaign;
  w_sensitivity buf r.Store.rec_sensitivity;
  w_int buf r.Store.rec_work

let r_record c =
  let rec_key = r_key c in
  let rec_campaign = r_campaign c in
  let rec_sensitivity = r_sensitivity c in
  let rec_work = r_int c in
  { Store.rec_key; rec_campaign; rec_sensitivity; rec_work }

(* --- CRC frames ------------------------------------------------------------- *)

(* Each frame is marker ∥ length ∥ crc32(payload) ∥ crc32(header) ∥ payload.
   The header carries its own CRC so that a corrupted length field cannot
   send the reader to a bogus offset: a reader that fails the header check
   rescans for the next marker instead, losing only the damaged frame. *)

let frame_marker = "FRC2"
let frame_header_size = 4 + 8 + 8 + 8

let frame payload =
  let buf = Buffer.create (String.length payload + frame_header_size) in
  Buffer.add_string buf frame_marker;
  w_int64 buf (Int64.of_int (String.length payload));
  w_int64 buf (Int64.of_int (Hashing.crc32 payload));
  let head = Buffer.contents buf in
  w_int64 buf (Int64.of_int (Hashing.crc32 head));
  Buffer.add_string buf payload;
  Buffer.contents buf

let add_frame buf payload = Buffer.add_string buf (frame payload)

(* Little-endian int64 at a raw offset, as a (possibly truncated) int. *)
let int_at data pos =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code data.[pos + i]))
  done;
  Int64.to_int !v

let read_frames ?(pos = 0) data =
  let len = String.length data in
  let marker_at p =
    p + 4 <= len
    && Char.equal data.[p] frame_marker.[0]
    && Char.equal data.[p + 1] frame_marker.[1]
    && Char.equal data.[p + 2] frame_marker.[2]
    && Char.equal data.[p + 3] frame_marker.[3]
  in
  (* A header is trusted only if its marker matches, its own CRC checks
     out, and the length it declares fits in the remaining bytes. *)
  let header_ok p =
    p + frame_header_size <= len
    && marker_at p
    && Hashing.crc32 ~pos:p ~len:20 data = int_at data (p + 20)
    &&
    let l = int_at data (p + 4) in
    l >= 0 && l <= len - p - frame_header_size
  in
  let frames = ref [] in
  let skipped = ref 0 in
  (* [in_skip] collapses a whole corrupt region (bad header + every false
     marker candidate inside it) into one skip event. *)
  let rec scan p ~in_skip =
    if p < len then
      if header_ok p then begin
        let l = int_at data (p + 4) in
        let payload = String.sub data (p + frame_header_size) l in
        if Hashing.crc32 payload = int_at data (p + 12) then
          frames := payload :: !frames
        else incr skipped;
        scan (p + frame_header_size + l) ~in_skip:false
      end
      else begin
        if not in_skip then incr skipped;
        let rec find q = if q + 4 > len then None else if marker_at q then Some q else find (q + 1) in
        match find (p + 1) with
        | Some q -> scan q ~in_skip:true
        | None -> ()
      end
  in
  scan pos ~in_skip:false;
  (List.rev !frames, !skipped)
