(** Security campaign mode: read an end-to-end injection campaign as an
    attack-surface analysis instead of a reliability analysis.

    A fault model like {!Ff_inject.Fault_model.Skip} or a targeted flip
    is an attacker primitive: gliching one instruction, corrupting one
    encoding, flipping entry-state memory. This module runs the same
    whole-trace campaign as the monolithic baseline under such a model
    and re-labels the outcomes for that threat:

    - {e silent corruption} — the program completed without any trap,
      timeout or misformatted output, and the output differs from golden
      beyond epsilon. This is the damage: a bypassed check or leaked
      state the victim never notices.
    - {e detected} — the attack was loud (trap/timeout/misformatted);
      a fail-stop system survives it.
    - {e masked} — the fault was absorbed; no attack.

    The valuation and knapsack machinery is reused verbatim with this
    new notion of damage: v(pc) counts silently-corrupting sites at pc,
    so {!protect_first} answers "which instructions to harden first"
    under the threat model. Findings classify each vulnerable pc as a
    check bypass (comparisons, branches, selects — e.g. the [hit] guard
    of the SHA2 lookup-table kernel), state corruption (memory traffic
    or entry-state flips) or compute corruption. *)

type kind =
  | Check_bypass
  | State_corruption
  | Compute_corruption

val kind_to_string : kind -> string

type finding = {
  f_pc : Ff_inject.Site.pc;
  f_kind : kind;
  f_instr : string;
  f_bad_sites : int;
  f_total_sites : int;
}

type t = {
  s_model : Ff_inject.Fault_model.t;
  s_epsilon : float;
  s_sites : int;
  s_classes : int;
  s_silent : int;
  s_detected : int;
  s_masked : int;
  s_findings : finding list;
  s_valuation : Valuation.t;
  s_solution : Knapsack.solution;
  s_work : int;
  s_injections : int;
}

val analyze :
  ?pool:Ff_support.Pool.t ->
  ?engine:Ff_vm.Replay.engine ->
  epsilon:float ->
  Ff_vm.Golden.t ->
  Ff_inject.Campaign.config ->
  t
(** Run the whole-trace campaign under [config] (whose
    [Campaign.config.model] is the threat model) and label every class
    for the attacker. Deterministic for any pool width and engine. *)

val protect_first : t -> target:float -> Knapsack.selection
(** The knapsack selection covering [target] (in [0,1]) of the silent
    damage at minimum dynamic-instruction cost. *)

val findings_json : t -> string
(** The findings as deterministic JSON: campaign summary (model, ε,
    outcome tallies) plus one object per finding with [kernel]/[instr]
    (the pc), [kind], [silent_sites] (the damage mass), [total_sites]
    and the printed [instruction]. Written by
    [fastflip security --json out.json]; consumed by
    [fastflip protect --seed-security] to prioritize detector placement
    at the sections whose kernels contain vulnerable pcs. *)

val report : ?target:float -> t -> string
(** Printable summary: outcome tallies, the vulnerable-instruction table
    (damage-first) and the protect-first selection (default target
    0.9). *)
