module Golden = Ff_vm.Golden
module Replay = Ff_vm.Replay
module Value = Ff_ir.Value
module Site = Ff_inject.Site
module Eqclass = Ff_inject.Eqclass
module Outcome = Ff_inject.Outcome
module Campaign = Ff_inject.Campaign
module Fault_model = Ff_inject.Fault_model
module Sensitivity = Ff_sensitivity.Sensitivity
module Pipeline = Fastflip.Pipeline
module Store = Fastflip.Store
module Pool = Ff_support.Pool
module Telemetry = Ff_support.Telemetry

let m_replays = Telemetry.counter "detect.coverage.replays"
let m_work = Telemetry.counter "detect.coverage.work"
let m_cache_hits = Telemetry.counter "detect.coverage.cache_hits"
let m_cache_misses = Telemetry.counter "detect.coverage.cache_misses"

type t = {
  c_section : int;
  c_detectors : Detector.t array;
  c_classes : (Eqclass.t * int) array;
  c_covered : int array;
  c_replays : int;
  c_work : int;
  c_cached : bool;
}

let covered_of_masks detectors class_masks =
  let covered = Array.make (Array.length detectors) 0 in
  Array.iter
    (fun (cls, mask) ->
      let size = Eqclass.size cls in
      Array.iteri
        (fun j _ -> if mask land (1 lsl j) <> 0 then covered.(j) <- covered.(j) + size)
        detectors)
    class_masks;
  covered

let covered_sites t ~mask =
  Array.fold_left
    (fun acc (cls, fired) ->
      if fired land mask <> 0 then acc + Eqclass.size cls else acc)
    0 t.c_classes

(* --- store encoding ---------------------------------------------------

   A coverage measurement is persisted as an ordinary campaign record in
   the coverage key space: class i's outcome is [S_sdc] with one
   (detector index, 1.0) pair per fired detector. The sensitivity slot
   is an empty spec for the section. Decoding validates the structure
   against the current class list and detector count; any mismatch is a
   miss, never a wrong answer. *)

let dummy_sensitivity section_index =
  {
    Sensitivity.section_index;
    input_buffers = [||];
    output_buffers = [||];
    k = [||];
    samples_used = 0;
    work = 0;
  }

let encode_record key ~section_index ~work (class_masks : (Eqclass.t * int) array) =
  let s_classes =
    Array.map
      (fun (cls, mask) ->
        let fired = ref [] in
        for j = 62 downto 0 do
          if mask land (1 lsl j) <> 0 then fired := (j, 1.0) :: !fired
        done;
        (cls, Outcome.S_sdc (Array.of_list !fired)))
      class_masks
  in
  {
    Store.rec_key = key;
    rec_campaign =
      {
        Campaign.section_index;
        s_classes;
        s_work = work;
        s_injections = Array.length class_masks;
        s_sites = Eqclass.total_sites (Array.to_list (Array.map fst class_masks));
      };
    rec_sensitivity = dummy_sensitivity section_index;
    rec_work = work;
  }

let same_class (a : Eqclass.t) (b : Eqclass.t) =
  Site.compare_pc a.Eqclass.pc b.Eqclass.pc = 0
  && a.Eqclass.operand = b.Eqclass.operand
  && a.Eqclass.bit = b.Eqclass.bit
  && Array.length a.Eqclass.members = Array.length b.Eqclass.members

let decode_record (record : Store.section_record) ~n_detectors
    (classes : Eqclass.t array) =
  let stored = record.Store.rec_campaign.Campaign.s_classes in
  if Array.length stored <> Array.length classes then None
  else
    let ok = ref true in
    let masks =
      Array.mapi
        (fun i (cls, outcome) ->
          if not (same_class cls classes.(i)) then ok := false;
          match outcome with
          | Outcome.S_detected _ ->
            ok := false;
            (classes.(i), 0)
          | Outcome.S_sdc fired ->
            let mask = ref 0 in
            Array.iter
              (fun (j, _) ->
                if j < 0 || j >= n_detectors then ok := false
                else mask := !mask lor (1 lsl j))
              fired;
            (classes.(i), !mask))
        stored
    in
    if !ok then Some masks else None

(* --- pilot replay ----------------------------------------------------- *)

(* The entry-side sum a Linear detector compares against is the golden
   entry sum of its input buffer — except under a Mem_flip injection
   into that very buffer, where the flip's effect on the sum is applied
   analytically (the engines flip the element before executing, so the
   check must see the same entry the replay saw). *)
let entry_sum_under section injection buffer ~base =
  match injection with
  | Replay.Fault _ -> base
  | Replay.Mem_flip { Replay.mf_buffer; mf_elem; mf_bits } ->
    if mf_buffer <> buffer then base
    else
      let entry = section.Golden.entry_state.(buffer) in
      if mf_elem < 0 || mf_elem >= Array.length entry then base
      else
        let old_v = entry.(mf_elem) in
        let new_v =
          List.fold_left (fun v b -> Value.flip_bit v b) old_v mf_bits
        in
        let scalar v =
          match v with Value.Float x -> x | Value.Int i -> Int64.to_float i
        in
        base -. scalar old_v +. scalar new_v

let measure ?(pool = Pool.serial) ?(engine = Replay.default_engine) ?backing
    (config : Pipeline.config) golden ~section_index ~detectors ~classes =
  Telemetry.span "detect.coverage"
    ~attrs:[ ("section", string_of_int section_index) ]
  @@ fun () ->
  let n_detectors = Array.length detectors in
  if n_detectors > 62 then
    invalid_arg "Coverage.measure: at most 62 detectors per section";
  let section = golden.Golden.sections.(section_index) in
  let classes = Array.of_list classes in
  let key =
    Pipeline.coverage_key config section
      ~detector_hash:(Detector.spec_hash [| detectors |])
  in
  let cached =
    match backing with
    | None -> None
    | Some (b : Pipeline.backing) -> (
      match b.Pipeline.lookup key with
      | None -> None
      | Some record -> decode_record record ~n_detectors classes)
  in
  match cached with
  | Some class_masks ->
    Telemetry.incr m_cache_hits;
    {
      c_section = section_index;
      c_detectors = detectors;
      c_classes = class_masks;
      c_covered = covered_of_masks detectors class_masks;
      c_replays = 0;
      c_work = 0;
      c_cached = true;
    }
  | None ->
    Telemetry.incr m_cache_misses;
    let model = config.Pipeline.campaign.Campaign.model in
    let timeout_factor = config.Pipeline.campaign.Campaign.timeout_factor in
    let burst = Fault_model.reg_burst model in
    (* capture the union of checked buffers once per replay *)
    let capture_idx =
      Array.of_list
        (List.sort_uniq compare
           (Array.to_list (Array.map (fun d -> d.Detector.d_buffer) detectors)))
    in
    let slot_of buffer =
      let rec go i = if capture_idx.(i) = buffer then i else go (i + 1) in
      go 0
    in
    let base_entry_sums =
      Array.map
        (fun d ->
          match d.Detector.d_form with
          | Detector.Linear { input; _ } ->
            Detector.sum section.Golden.entry_state.(input)
          | Detector.Finite | Detector.Range _ -> 0.0)
        detectors
    in
    let run_one (cls : Eqclass.t) =
      let injection = Site.replay_injection ~model cls.Eqclass.pilot in
      let replay, captured =
        Replay.run_section_capture ~burst ~engine golden section injection
          ~timeout_factor ~buffers:capture_idx
      in
      let mask = ref 0 in
      (match captured with
      | None -> ()  (* anomalous replay: detected by cheaper means, mask 0 *)
      | Some buffers ->
        Array.iteri
          (fun j (d : Detector.t) ->
            let entry_sum =
              match d.Detector.d_form with
              | Detector.Linear { input; _ } ->
                entry_sum_under section injection input ~base:base_entry_sums.(j)
              | Detector.Finite | Detector.Range _ -> 0.0
            in
            if Detector.fires d ~entry_sum buffers.(slot_of d.Detector.d_buffer)
            then mask := !mask lor (1 lsl j))
          detectors);
      (!mask, replay.Replay.s_executed)
    in
    let results = Pool.map_array pool run_one classes in
    let work = Array.fold_left (fun acc (_, w) -> acc + w) 0 results in
    let class_masks =
      Array.mapi (fun i (mask, _) -> (classes.(i), mask)) results
    in
    Telemetry.add m_replays (Array.length classes);
    Telemetry.add m_work work;
    (match backing with
    | None -> ()
    | Some b ->
      b.Pipeline.publish (encode_record key ~section_index ~work class_masks));
    {
      c_section = section_index;
      c_detectors = detectors;
      c_classes = class_masks;
      c_covered = covered_of_masks detectors class_masks;
      c_replays = Array.length classes;
      c_work = work;
      c_cached = false;
    }
