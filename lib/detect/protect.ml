module Golden = Ff_vm.Golden
module Site = Ff_inject.Site
module Pipeline = Fastflip.Pipeline
module Valuation = Fastflip.Valuation
module Knapsack = Fastflip.Knapsack
module Hashing = Ff_support.Hashing
module Pool = Ff_support.Pool
module Table = Ff_support.Table
module Telemetry = Ff_support.Telemetry

let m_runs = Telemetry.counter "detect.protect.runs"
let m_work = Telemetry.counter "detect.protect.work"

type t = {
  r_synth : Synthesize.t option;
  r_coverages : Coverage.t list;
  r_select : Select.t;
  r_target : float;
  r_mixed : Select.selection;
  r_pure : Knapsack.selection;
  r_work : int;
}

(* the synthesis RNG stream is the analysis seed in a reserved lane, so
   protect results are reproducible from the analysis config alone *)
let synth_seed (config : Pipeline.config) =
  Hashing.combine config.Pipeline.seed 0x6465746563L

let run ?(pool = Pool.serial) ?engine ?backing ?(detectors_enabled = true)
    ?max_detectors ?train ?validate ?focus (config : Pipeline.config)
    (analysis : Pipeline.analysis) ~target =
  Telemetry.span "detect.protect" @@ fun () ->
  Telemetry.incr m_runs;
  let golden = analysis.Pipeline.golden in
  let valuation = analysis.Pipeline.valuation in
  let synth, coverages =
    if not detectors_enabled then (None, [])
    else begin
      let specs =
        Array.map
          (fun (r : Fastflip.Store.section_record) -> r.Fastflip.Store.rec_sensitivity)
          analysis.Pipeline.sections
      in
      let synth =
        Synthesize.run ~pool ?train ?validate
          ~max_perturbation:config.Pipeline.max_perturbation
          ~safety_factor:config.Pipeline.safety_factor ?focus
          ~seed:(synth_seed config) golden ~specs
      in
      let coverages =
        List.filter_map
          (fun si ->
            let candidates = synth.Synthesize.candidates.(si) in
            let candidates =
              if Array.length candidates > 62 then Array.sub candidates 0 62
              else candidates
            in
            let bad = Valuation.bad_labels_in_section valuation ~section:si in
            if Array.length candidates = 0 || bad = [] then None
            else
              Some
                (Coverage.measure ~pool ?engine ?backing config golden
                   ~section_index:si ~detectors:candidates
                   ~classes:(List.map (fun l -> l.Valuation.cls) bad)))
          (List.init (Array.length golden.Golden.sections) Fun.id)
      in
      (Some synth, coverages)
    end
  in
  let select = Select.build ?max_detectors valuation coverages in
  let target_value =
    int_of_float (ceil (target *. float_of_int select.Select.t_total_value))
  in
  let mixed = Select.selection_at select ~target:target_value in
  let pure = Knapsack.select select.Select.t_pure ~target:target_value in
  let work =
    (match synth with Some s -> s.Synthesize.work | None -> 0)
    + List.fold_left (fun acc c -> acc + c.Coverage.c_work) 0 coverages
  in
  Telemetry.add m_work work;
  {
    r_synth = synth;
    r_coverages = coverages;
    r_select = select;
    r_target = target;
    r_mixed = mixed;
    r_pure = pure;
    r_work = work;
  }

let pct part total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let report t =
  let buf = Buffer.create 1024 in
  let total = t.r_select.Select.t_total_value in
  (match t.r_synth with
  | None -> Buffer.add_string buf "detectors disabled: pure duplication knapsack\n"
  | Some s ->
    let n_candidates =
      Array.fold_left (fun acc a -> acc + Array.length a) 0 s.Synthesize.candidates
    in
    Buffer.add_string buf
      (Printf.sprintf
         "detector synthesis: %d candidates survived (%d dropped on %d benign \
          validation runs, %d false-positive fires)\n"
         n_candidates s.Synthesize.dropped s.Synthesize.validation_runs
         s.Synthesize.fp_fires);
    Buffer.add_string buf
      (Printf.sprintf
         "coverage: %d sections measured, %d pilot replays (%d cached), %d \
          instructions of replay work\n"
         (List.length t.r_coverages)
         (List.fold_left (fun a c -> a + c.Coverage.c_replays) 0 t.r_coverages)
         (List.length (List.filter (fun c -> c.Coverage.c_cached) t.r_coverages))
         (List.fold_left (fun a c -> a + c.Coverage.c_work) 0 t.r_coverages)));
  let detectors = t.r_select.Select.t_detectors in
  if Array.length detectors > 0 then begin
    let tbl =
      Table.create ~title:"candidate detectors (coverage-ranked)"
        [
          ("#", Table.Right); ("Detector", Table.Left); ("Cost", Table.Right);
          ("Covered sites", Table.Right); ("Of total", Table.Right);
        ]
    in
    Array.iteri
      (fun i d ->
        Table.add_row tbl
          [
            string_of_int i;
            Detector.describe d;
            string_of_int d.Detector.d_cost;
            string_of_int t.r_select.Select.t_covered.(i);
            Printf.sprintf "%.1f%%" (pct t.r_select.Select.t_covered.(i) total);
          ])
      detectors;
    Buffer.add_string buf (Table.render tbl);
    Buffer.add_char buf '\n'
  end;
  Buffer.add_string buf
    (Printf.sprintf "pareto front: %d points over %d detector subsets\n"
       (Array.length t.r_select.Select.t_front)
       (1 lsl Array.length detectors));
  Buffer.add_string buf
    (Printf.sprintf
       "target %.2f of %d SDC-Bad sites:\n  pure duplication: value %d cost %d \
        (%d pcs)\n  mixed           : value %d cost %d (%d detectors + %d pcs)\n"
       t.r_target total t.r_pure.Knapsack.value t.r_pure.Knapsack.cost
       (List.length t.r_pure.Knapsack.pcs)
       t.r_mixed.Select.sel_value t.r_mixed.Select.sel_cost
       (Array.length t.r_mixed.Select.sel_detectors)
       (List.length t.r_mixed.Select.sel_dup.Knapsack.pcs));
  (if t.r_mixed.Select.sel_cost < t.r_pure.Knapsack.cost then
     Buffer.add_string buf
       (Printf.sprintf "  detectors save %.1f%% of the protection cost\n"
          (100.0
          *. (1.0
             -. float_of_int t.r_mixed.Select.sel_cost
                /. float_of_int (max 1 t.r_pure.Knapsack.cost))))
   else if Array.length detectors > 0 then
     Buffer.add_string buf
       "  duplication alone is optimal at this target\n");
  Buffer.contents buf

let pareto_json t =
  let buf = Buffer.create 2048 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"target\": %.17g,\n" t.r_target);
  add (Printf.sprintf "  \"total_value\": %d,\n" t.r_select.Select.t_total_value);
  add "  \"detectors\": [";
  Array.iteri
    (fun i d ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "\n    {\"index\": %d, \"section\": %d, \"buffer\": %d, \"form\": \
            \"%s\", \"cost\": %d, \"covered\": %d}"
           i d.Detector.d_section d.Detector.d_buffer
           (match d.Detector.d_form with
           | Detector.Finite -> "finite"
           | Detector.Range _ -> "range"
           | Detector.Linear _ -> "linear")
           d.Detector.d_cost t.r_select.Select.t_covered.(i)))
    t.r_select.Select.t_detectors;
  if Array.length t.r_select.Select.t_detectors > 0 then add "\n  ";
  add "],\n";
  add "  \"front\": [";
  Array.iteri
    (fun i (p : Select.point) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf
           "\n    {\"value\": %d, \"cost\": %d, \"mask\": %d, \"dup_value\": %d}"
           p.Select.p_value p.Select.p_cost p.Select.p_mask p.Select.p_dup_value))
    t.r_select.Select.t_front;
  add "\n  ],\n";
  add "  \"pure_front\": [";
  List.iteri
    (fun i (v, c) ->
      if i > 0 then add ",";
      add (Printf.sprintf "\n    {\"value\": %d, \"cost\": %d}" v c))
    (Select.pure_points t.r_select);
  add "\n  ],\n";
  add
    (Printf.sprintf
       "  \"mixed\": {\"value\": %d, \"cost\": %d, \"mask\": %d, \"detectors\": \
        %d, \"duplicated_pcs\": %d},\n"
       t.r_mixed.Select.sel_value t.r_mixed.Select.sel_cost
       t.r_mixed.Select.sel_mask
       (Array.length t.r_mixed.Select.sel_detectors)
       (List.length t.r_mixed.Select.sel_dup.Knapsack.pcs));
  add
    (Printf.sprintf
       "  \"pure\": {\"value\": %d, \"cost\": %d, \"duplicated_pcs\": %d},\n"
       t.r_pure.Knapsack.value t.r_pure.Knapsack.cost
       (List.length t.r_pure.Knapsack.pcs));
  (match t.r_synth with
  | None -> add "  \"synthesis\": null,\n"
  | Some s ->
    add
      (Printf.sprintf
         "  \"synthesis\": {\"candidates\": %d, \"dropped\": %d, \"fp_fires\": \
          %d, \"train_runs\": %d, \"validation_runs\": %d},\n"
         (Array.fold_left (fun acc a -> acc + Array.length a) 0 s.Synthesize.candidates)
         s.Synthesize.dropped s.Synthesize.fp_fires s.Synthesize.train_runs
         s.Synthesize.validation_runs));
  add (Printf.sprintf "  \"work\": %d\n" t.r_work);
  add "}\n";
  Buffer.contents buf
