(** Detector synthesis from the golden trace plus benign perturbed runs.

    For each schedule section (optionally restricted to a focus set
    seeded from security findings), learn candidate detectors on its
    output buffers:

    {ul
    {- a [Finite] guard whenever the golden exit is finite;}
    {- a [Range] check with bounds from the golden exit min/max widened
       by the section's Lipschitz constant × [max_perturbation] ×
       [safety_factor] (skipped when K is infinite — no range can both
       hold benignly and stay tight), then further widened to cover
       every benign training run;}
    {- a [Linear] sum invariant fit by least squares over the training
       runs, only for sections reading exactly one buffer (so the
       invariant is sound against perturbations of any input), with
       tolerance = max training residual × [safety_factor].}}

    Training and validation runs are ε-perturbed golden entries executed
    on the reference engine, chunk-seeded exactly like
    {!Ff_sensitivity.Sensitivity.estimate} — deterministic at any pool
    width. Candidates that fire on any validation run are dropped, so
    the surviving set has a {e measured} benign false-positive rate of
    zero by construction (reported, not assumed). *)

type t = {
  candidates : Detector.t array array;  (** per schedule section *)
  spec_hash : int64;  (** {!Detector.spec_hash} of [candidates] *)
  train_runs : int;       (** benign training runs per section *)
  validation_runs : int;  (** benign validation runs per section *)
  fp_fires : int;   (** validation fires of the surviving set: always 0 *)
  dropped : int;    (** candidates dropped for firing on a benign run *)
  work : int;       (** dynamic instructions simulated *)
}

val run :
  ?pool:Ff_support.Pool.t ->
  ?train:int ->
  ?validate:int ->
  ?max_perturbation:float ->
  ?safety_factor:float ->
  ?focus:Ff_inject.Site.pc list ->
  seed:int64 ->
  Ff_vm.Golden.t ->
  specs:Ff_sensitivity.Sensitivity.t array ->
  t
(** [specs.(s)] must be the sensitivity spec of schedule section [s]
    (the pipeline's per-section records provide exactly this).
    Defaults: 40 training and 40 validation runs per section,
    perturbation 0.01, safety factor 1.25. With [focus], only sections
    whose kernel contains a focus pc get candidates — the
    security-findings seeding of detector placement. *)

val focus_of_json : string -> Ff_inject.Site.pc list
(** Extract the finding pcs from a [fastflip security --json] export
    (a tolerant scan for ["kernel": k, "instr": i] pairs — no JSON
    dependency). Unparseable input yields the empty list. *)
