module Site = Ff_inject.Site
module Eqclass = Ff_inject.Eqclass
module Valuation = Fastflip.Valuation
module Knapsack = Fastflip.Knapsack
module Telemetry = Ff_support.Telemetry

let m_candidates = Telemetry.counter "detect.select.candidates"
let m_subsets = Telemetry.counter "detect.select.subsets"
let m_front = Telemetry.counter "detect.select.front_points"

type point = {
  p_value : int;
  p_cost : int;
  p_mask : int;
  p_dup_value : int;
}

type t = {
  t_detectors : Detector.t array;
  t_covered : int array;
  t_classes : (Site.pc * int * int) array;
  t_total_value : int;
  t_items : Knapsack.item list;
  t_pure : Knapsack.solution;
  t_front : point array;
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* Residual duplication items for a detector subset: each pc's value
   shrinks by the bad sites the subset already catches there. Never
   negative — a class's sites are a subset of its pc's value mass. *)
let adjusted_items items classes ~mask =
  if mask = 0 then items
  else begin
    let cov = Hashtbl.create 16 in
    Array.iter
      (fun (pc, size, gmask) ->
        if gmask land mask <> 0 then
          Hashtbl.replace cov pc (size + Option.value ~default:0 (Hashtbl.find_opt cov pc)))
      classes;
    List.map
      (fun (it : Knapsack.item) ->
        match Hashtbl.find_opt cov it.Knapsack.pc with
        | None -> it
        | Some c -> { it with Knapsack.value = max 0 (it.Knapsack.value - c) })
      items
  end

let subset_base classes detectors ~mask =
  let base_cost = ref 0 in
  Array.iteri
    (fun i (d : Detector.t) ->
      if mask land (1 lsl i) <> 0 then base_cost := !base_cost + d.Detector.d_cost)
    detectors;
  let base_value = ref 0 in
  Array.iter
    (fun (_, size, gmask) -> if gmask land mask <> 0 then base_value := !base_value + size)
    classes;
  (!base_value, !base_cost)

let build ?(max_detectors = 8) (valuation : Valuation.t) coverages =
  Telemetry.span "detect.select" @@ fun () ->
  if max_detectors < 0 || max_detectors > 16 then
    invalid_arg "Select.build: max_detectors must be in [0, 16]";
  let items = Knapsack.items_of_valuation valuation in
  (* rank (covered desc, section asc, local index asc), cap the pool *)
  let ranked =
    List.sort
      (fun (cov_a, sec_a, j_a, _) (cov_b, sec_b, j_b, _) ->
        if cov_a <> cov_b then compare cov_b cov_a
        else if sec_a <> sec_b then compare sec_a sec_b
        else compare j_a j_b)
      (List.concat_map
         (fun (c : Coverage.t) ->
           List.filteri
             (fun _ (cov, _, _, _) -> cov > 0)
             (Array.to_list
                (Array.mapi
                   (fun j d -> (c.Coverage.c_covered.(j), c.Coverage.c_section, j, d))
                   c.Coverage.c_detectors)))
         coverages)
  in
  let chosen =
    Array.of_list
      (List.filteri (fun i _ -> i < max_detectors) ranked)
  in
  let detectors = Array.map (fun (_, _, _, d) -> d) chosen in
  let covered = Array.map (fun (cov, _, _, _) -> cov) chosen in
  (* remap each caught class's local fired mask onto the global pool *)
  let classes =
    Array.of_list
      (List.concat_map
         (fun (c : Coverage.t) ->
           List.filter_map
             (fun ((cls : Eqclass.t), local_mask) ->
               let gmask = ref 0 in
               Array.iteri
                 (fun g (_, sec, j, _) ->
                   if sec = c.Coverage.c_section && local_mask land (1 lsl j) <> 0
                   then gmask := !gmask lor (1 lsl g))
                 chosen;
               if !gmask = 0 then None
               else Some (cls.Eqclass.pc, Eqclass.size cls, !gmask))
             (Array.to_list c.Coverage.c_classes))
         coverages)
  in
  let n = Array.length detectors in
  let pure = Knapsack.solve items in
  (* every subset's residual frontier competes in one global filter *)
  let candidates = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let base_value, base_cost = subset_base classes detectors ~mask in
    let solution =
      if mask = 0 then pure else Knapsack.solve (adjusted_items items classes ~mask)
    in
    List.iter
      (fun (v, c) ->
        candidates :=
          {
            p_value = base_value + v;
            p_cost = base_cost + c;
            p_mask = mask;
            p_dup_value = v;
          }
          :: !candidates)
      (Knapsack.points solution)
  done;
  (* Pareto: cost ascending; keep strictly improving value. Ties prefer
     higher value, then fewer detectors, then lower mask, then smaller
     residual target — a total order, so the front is deterministic. *)
  let sorted =
    List.sort
      (fun a b ->
        if a.p_cost <> b.p_cost then compare a.p_cost b.p_cost
        else if a.p_value <> b.p_value then compare b.p_value a.p_value
        else if popcount a.p_mask <> popcount b.p_mask then
          compare (popcount a.p_mask) (popcount b.p_mask)
        else if a.p_mask <> b.p_mask then compare a.p_mask b.p_mask
        else compare a.p_dup_value b.p_dup_value)
      !candidates
  in
  let front = ref [] in
  let best = ref (-1) in
  List.iter
    (fun p ->
      if p.p_value > !best then begin
        best := p.p_value;
        front := p :: !front
      end)
    sorted;
  let front = Array.of_list (List.rev !front) in
  Telemetry.add m_candidates n;
  Telemetry.add m_subsets (1 lsl n);
  Telemetry.add m_front (Array.length front);
  {
    t_detectors = detectors;
    t_covered = covered;
    t_classes = classes;
    t_total_value = valuation.Valuation.total_value;
    t_items = items;
    t_pure = pure;
    t_front = front;
  }

type selection = {
  sel_detectors : Detector.t array;
  sel_mask : int;
  sel_dup : Knapsack.selection;
  sel_value : int;
  sel_cost : int;
}

let selection_at t ~target =
  let target = min target t.t_total_value in
  let target = max target 0 in
  let point =
    let n = Array.length t.t_front in
    let rec go i =
      if i >= n then t.t_front.(n - 1)  (* front always reaches total value *)
      else if t.t_front.(i).p_value >= target then t.t_front.(i)
      else go (i + 1)
    in
    go 0
  in
  let base_value, base_cost =
    subset_base t.t_classes t.t_detectors ~mask:point.p_mask
  in
  let solution =
    if point.p_mask = 0 then t.t_pure
    else Knapsack.solve (adjusted_items t.t_items t.t_classes ~mask:point.p_mask)
  in
  let dup = Knapsack.select solution ~target:point.p_dup_value in
  let detectors =
    Array.of_list
      (List.filteri
         (fun i _ -> point.p_mask land (1 lsl i) <> 0)
         (Array.to_list t.t_detectors))
  in
  {
    sel_detectors = detectors;
    sel_mask = point.p_mask;
    sel_dup = dup;
    sel_value = base_value + dup.Knapsack.value;
    sel_cost = base_cost + dup.Knapsack.cost;
  }

let pure_points t = Knapsack.points t.t_pure
