(** Mixed duplication-vs-detector protection selection.

    Generalizes the paper's §4.6 knapsack: each pc may be protected by
    full instruction duplication (exact coverage of all its SDC-Bad
    sites, §5.3 per-dynamic-instance cost) {e or} left to a shared
    runtime detector (injection-measured coverage of the specific bad
    classes it fires on, amortized per-program-run check cost) — or
    both, with the duplication value credited only for sites the
    detectors miss.

    The optimizer decomposes over detector subsets [D] of a small global
    candidate pool (the top-covering detectors, default ≤ 8, so ≤ 256
    subsets): for a fixed [D] the best duplication set is an ordinary
    0-1 knapsack over residual values [v(pc) − cov_D(pc)], and every
    (value, cost) frontier point of every subset competes in one global
    Pareto filter. The empty subset's frontier {e is} the pure-
    duplication frontier, so with detectors disabled the mixed answer
    degenerates to the paper's knapsack exactly. Fully deterministic:
    no randomness, no pool. *)

type point = {
  p_value : int;  (** protected SDC-Bad sites (detector-covered + duplicated) *)
  p_cost : int;   (** detector check cost + duplication cost *)
  p_mask : int;   (** detector subset (bit i = [t_detectors.(i)]) *)
  p_dup_value : int;  (** residual knapsack target that reconstructs it *)
}

type t = {
  t_detectors : Detector.t array;  (** global candidate pool, coverage order *)
  t_covered : int array;  (** sites each global detector covers alone *)
  t_classes : (Ff_inject.Site.pc * int * int) array;
      (** (pc, class size, global detector mask) per detector-caught class *)
  t_total_value : int;    (** the valuation's Σ v(pc) *)
  t_items : Fastflip.Knapsack.item list;  (** pure duplication items *)
  t_pure : Fastflip.Knapsack.solution;  (** the D = ∅ knapsack *)
  t_front : point array;
      (** global Pareto front: cost ascending, value strictly increasing,
          starting at (0, 0) *)
}

val build :
  ?max_detectors:int ->
  Fastflip.Valuation.t ->
  Coverage.t list ->
  t
(** [build valuation coverages] with the per-section coverage
    measurements (any order; sections without measurements simply
    contribute no detectors). Candidates are ranked by sites covered
    (ties: section, then local index) and capped at [max_detectors]
    (default 8, hard limit 16 — subset enumeration is 2^n). *)

type selection = {
  sel_detectors : Detector.t array;
  sel_mask : int;
  sel_dup : Fastflip.Knapsack.selection;  (** pcs to duplicate *)
  sel_value : int;
  sel_cost : int;
}

val selection_at : t -> target:int -> selection
(** Cheapest mixed selection with value ≥ [min target t_total_value]:
    the first frontier point at or above the target, reconstructed
    exactly (its residual knapsack re-solved and extracted at
    [p_dup_value]). *)

val pure_points : t -> (int * int) list
(** The pure-duplication frontier ({!Fastflip.Knapsack.points} of the
    D = ∅ solution) — the baseline the mixed front is compared against. *)
