(** The end-to-end protect pipeline: synthesize → measure → select,
    plus the report and Pareto JSON the CLI prints.

    Runs on top of a completed {!Fastflip.Pipeline.analysis}: the
    per-section sensitivity specs seed detector synthesis, the
    valuation's SDC-Bad class labels are the coverage work list, and
    the mixed optimizer competes detectors against the analysis' own
    duplication knapsack. With [detectors_enabled = false] the result
    is exactly the pure-duplication selection, reported in the same
    format — the CLI's [--detectors] off/on diff is therefore a
    like-for-like comparison. *)

type t = {
  r_synth : Synthesize.t option;  (** [None] when detectors are disabled *)
  r_coverages : Coverage.t list;  (** ascending section order *)
  r_select : Select.t;
  r_target : float;       (** requested fractional value target *)
  r_mixed : Select.selection;
  r_pure : Fastflip.Knapsack.selection;
  r_work : int;           (** synthesis + coverage replay work *)
}

val run :
  ?pool:Ff_support.Pool.t ->
  ?engine:Ff_vm.Replay.engine ->
  ?backing:Fastflip.Pipeline.backing ->
  ?detectors_enabled:bool ->
  ?max_detectors:int ->
  ?train:int ->
  ?validate:int ->
  ?focus:Ff_inject.Site.pc list ->
  Fastflip.Pipeline.config ->
  Fastflip.Pipeline.analysis ->
  target:float ->
  t
(** Synthesis seeds from [config]'s perturbation magnitude, safety
    factor, and RNG seed, so the whole protect run is a pure function
    of (program, config, target, focus) — byte-identical at any pool
    width. Coverage replays go through [backing] when given, reusing
    cached measurements across runs. *)

val report : t -> string
(** Human-readable report: synthesis/coverage summary, the surviving
    detectors with measured coverage, and the mixed-vs-pure selection
    comparison at the target. *)

val pareto_json : t -> string
(** Machine-readable Pareto front: candidate detectors, the mixed
    front (value, cost, detector mask, duplicated-value split), the
    pure-duplication front, and the two selections at the target.
    Deterministic field order; no JSON library. *)
