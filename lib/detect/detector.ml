module Value = Ff_ir.Value
module Hashing = Ff_support.Hashing

type form =
  | Finite
  | Range of { lo : float; hi : float }
  | Linear of { input : int; scale : float; offset : float; tol : float }

type t = {
  d_section : int;
  d_buffer : int;
  d_form : form;
  d_cost : int;
}

let cost_of_form form ~len ~input_len =
  match form with
  | Finite -> len
  | Range _ -> 2 * len
  | Linear _ -> len + input_len + 4

let scalar = function
  | Value.Float x -> x
  | Value.Int i -> Int64.to_float i

let sum arr =
  let s = ref 0.0 in
  for i = 0 to Array.length arr - 1 do
    s := !s +. scalar arr.(i)
  done;
  !s

(* Every predicate is phrased as "not provably in bounds", so a NaN
   (for which both <= comparisons are false) always fires instead of
   slipping through a naive [x < lo || x > hi]. *)
let fires t ~entry_sum exit_values =
  match t.d_form with
  | Finite -> Array.exists (fun v -> not (Value.is_finite v)) exit_values
  | Range { lo; hi } ->
    Array.exists
      (fun v ->
        let x = scalar v in
        not (x >= lo && x <= hi))
      exit_values
  | Linear { input = _; scale; offset; tol } ->
    let out_sum = sum exit_values in
    let predicted = (scale *. entry_sum) +. offset in
    not (Float.abs (out_sum -. predicted) <= tol)

let hash_fold h t =
  Hashing.add_int h t.d_section;
  Hashing.add_int h t.d_buffer;
  Hashing.add_int h t.d_cost;
  match t.d_form with
  | Finite -> Hashing.add_int h 0
  | Range { lo; hi } ->
    Hashing.add_int h 1;
    Hashing.add_float h lo;
    Hashing.add_float h hi
  | Linear { input; scale; offset; tol } ->
    Hashing.add_int h 2;
    Hashing.add_int h input;
    Hashing.add_float h scale;
    Hashing.add_float h offset;
    Hashing.add_float h tol

let spec_hash per_section =
  let h = Hashing.create () in
  Array.iter
    (fun section ->
      Hashing.add_int h (Array.length section);
      Array.iter (hash_fold h) section)
    per_section;
  Hashing.value h

let describe t =
  let form =
    match t.d_form with
    | Finite -> "finite"
    | Range { lo; hi } -> Printf.sprintf "range[%g,%g]" lo hi
    | Linear { input; scale; offset; tol } ->
      Printf.sprintf "linear(b%d;%g,%g;tol %g)" input scale offset tol
  in
  Printf.sprintf "%s on b%d after s%d" form t.d_buffer t.d_section
