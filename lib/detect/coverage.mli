(** Injection-measured detector coverage (no modeling, no guessing).

    For each SDC-Bad equivalence class of a section's completed
    campaign, re-run the pilot injection with {!Ff_vm.Replay.run_section_capture}
    and evaluate every candidate detector against the faulty exit
    buffers: a detector {e covers} the class iff it fires on the pilot.
    The replays reuse the campaign's exact fault lowering (model burst,
    pilot site, timeout budget) and the unboxed engine, pooled over
    classes with order-independent merging — deterministic at any pool
    width.

    Measurements are cached in the analysis store under
    {!Fastflip.Pipeline.coverage_key}: fired-detector masks are encoded
    as a well-formed campaign record ([S_sdc] magnitude pairs, one per
    fired detector index), so coverage shares the store's save, salvage,
    and sharding machinery without a wire-format change. A cached record
    that fails structural validation against the current class list is
    treated as a miss. *)

type t = {
  c_section : int;
  c_detectors : Detector.t array;
  c_classes : (Ff_inject.Eqclass.t * int) array;
      (** (SDC-Bad class, fired-detector bitmask), campaign class order *)
  c_covered : int array;
      (** per detector: Σ {!Ff_inject.Eqclass.size} over classes it catches *)
  c_replays : int;  (** pilot replays actually executed (0 on cache hit) *)
  c_work : int;     (** dynamic instructions those replays cost *)
  c_cached : bool;
}

val measure :
  ?pool:Ff_support.Pool.t ->
  ?engine:Ff_vm.Replay.engine ->
  ?backing:Fastflip.Pipeline.backing ->
  Fastflip.Pipeline.config ->
  Ff_vm.Golden.t ->
  section_index:int ->
  detectors:Detector.t array ->
  classes:Ff_inject.Eqclass.t list ->
  t
(** [classes] are the section's SDC-Bad classes (e.g.
    {!Fastflip.Valuation.bad_labels_in_section}), in campaign order.
    At most 62 detectors per section (mask width); raises
    [Invalid_argument] beyond that. Without a [backing] nothing is
    cached. *)

val covered_sites : t -> mask:int -> int
(** Σ class sizes over classes caught by at least one detector in
    [mask] — the coverage a detector {e subset} delivers, used by the
    mixed knapsack. *)
