(** Learned runtime detectors: cheap checks on a section's output
    buffers, in the style of pySDC's Hot Rod range/invariant checking.

    A detector attaches to one (schedule section, program buffer) pair
    and is evaluated against the buffer's contents at section exit —
    recompute-on-suspicion is the assumed response, so a firing detector
    counts as full coverage of the faults it catches. Three forms:

    {ul
    {- [Finite]: every element is a finite float (ints are always
       finite) — the NaN/Inf guard.}
    {- [Range]: every element lies in [[lo, hi]], bounds learned from
       the golden exit values and widened by the section's Lipschitz
       constant × the benign perturbation magnitude × the safety factor,
       then further widened to cover every observed benign training run.
       Non-finite values fail the range test by construction.}
    {- [Linear]: the element sum of the output buffer tracks an affine
       function of the element sum of one input buffer, with tolerance
       learned from benign perturbed runs. Only synthesized when the
       section reads exactly one buffer, so the invariant is sound
       against perturbations of {e any} input.}}

    Costs are in the same unit as the duplication cost model (§5.3
    dynamic instructions per program run), so the mixed knapsack can
    trade a detector's amortized check cost against per-instance
    duplication cost directly. *)

type form =
  | Finite
  | Range of { lo : float; hi : float }
  | Linear of { input : int; scale : float; offset : float; tol : float }
      (** [input] is the program buffer index whose element sum predicts
          the output's element sum: |Σout − (scale·Σin + offset)| ≤ tol *)

type t = {
  d_section : int;  (** schedule index the check runs after *)
  d_buffer : int;   (** program buffer checked at section exit *)
  d_form : form;
  d_cost : int;     (** dynamic-instruction-equivalent cost per program run *)
}

val cost_of_form : form -> len:int -> input_len:int -> int
(** The cost model: [Finite] is one check per element ([len]), [Range]
    two ([2·len]), [Linear] one add per input and output element plus a
    constant ([len + input_len + 4]). *)

val fires : t -> entry_sum:float -> Ff_ir.Value.t array -> bool
(** Evaluate the detector against the buffer's exit contents.
    [entry_sum] is the element sum of the [Linear] input buffer at
    section entry (ignored by the other forms). Any non-finite quantity
    fires: the comparisons are written so NaN can never slip through. *)

val sum : Ff_ir.Value.t array -> float
(** Deterministic left-to-right element sum ([Int] via [Int64.to_float])
    — the quantity [Linear] detectors track on both sides. *)

val hash_fold : Ff_support.Hashing.t -> t -> unit

val spec_hash : t array array -> int64
(** Digest of a full per-section candidate set (the [detector_hash] the
    coverage cache keys on): section/buffer/form/thresholds of every
    candidate, order-sensitive. *)

val describe : t -> string
(** Short human form, e.g. [range[-1.5,2.5] on b3 after s1]. *)
