open Ff_ir
module Golden = Ff_vm.Golden
module Machine = Ff_vm.Machine
module Site = Ff_inject.Site
module Sensitivity = Ff_sensitivity.Sensitivity
module Hashing = Ff_support.Hashing
module Rng = Ff_support.Rng
module Pool = Ff_support.Pool
module Telemetry = Ff_support.Telemetry

let m_sections = Telemetry.counter "detect.synthesize.sections"
let m_candidates = Telemetry.counter "detect.synthesize.candidates"
let m_dropped = Telemetry.counter "detect.synthesize.dropped_fp"
let m_runs = Telemetry.counter "detect.synthesize.benign_runs"
let m_work = Telemetry.counter "detect.synthesize.work"

type t = {
  candidates : Detector.t array array;
  spec_hash : int64;
  train_runs : int;
  validation_runs : int;
  fp_fires : int;
  dropped : int;
  work : int;
}

(* ε-perturbation of one entry element, mirroring the sensitivity
   estimator's benign model: floats move by a signed δ ≤ max_perturbation
   (never exactly 0), ints by ±max(1, round max_perturbation). *)
let perturb_element rng max_perturbation arr i =
  match arr.(i) with
  | Value.Float x ->
    let delta = ref (Rng.float_signed rng max_perturbation) in
    if !delta = 0.0 then delta := max_perturbation;
    arr.(i) <- Value.Float (x +. !delta)
  | Value.Int x ->
    let range = Int64.to_int (Int64.of_float (Float.max 1.0 (Float.round max_perturbation))) in
    let delta = ref (Rng.int rng ((2 * range) + 1) - range) in
    if !delta = 0 then delta := 1;
    arr.(i) <- Value.Int (Int64.add x (Int64.of_int !delta))

(* One benign run: perturb one readable buffer of the section's entry
   state (single element, a random subset, or all elements), execute the
   section, and return the post-exec state together with the perturbed
   entry sum of the chosen buffer (the Linear invariant's input side).
   The run's randomness comes entirely from [rng], which callers derive
   from (seed, section, run index) — never from scheduling. *)
type benign_run = {
  br_ok : bool;  (** finished within budget; trapped runs observe nothing *)
  br_state : Value.t array array;
  br_in_sums : (int * float) array;  (** perturbed entry sum per input buffer *)
  br_work : int;
}

let run_benign rng golden ~max_perturbation ~section_index
    ~(spec : Sensitivity.t) =
  let section = golden.Golden.sections.(section_index) in
  let state = Array.map Array.copy section.Golden.entry_state in
  let inputs = spec.Sensitivity.input_buffers in
  if Array.length inputs > 0 then begin
    let target = state.(inputs.(Rng.int rng (Array.length inputs))) in
    let n = Array.length target in
    if n > 0 then
      match Rng.int rng 3 with
      | 0 -> perturb_element rng max_perturbation target (Rng.int rng n)
      | 1 ->
        let count = 1 + Rng.int rng (max 1 (n / 2)) in
        for _ = 1 to count do
          perturb_element rng max_perturbation target (Rng.int rng n)
        done
      | _ ->
        for e = 0 to n - 1 do
          perturb_element rng max_perturbation target e
        done
  end;
  let in_sums = Array.map (fun i -> (i, Detector.sum state.(i))) inputs in
  let buffers = Array.map (fun (idx, _) -> state.(idx)) section.Golden.bindings in
  let budget =
    max 16 (int_of_float (ceil (5.0 *. float_of_int section.Golden.dyn_count)))
  in
  let run =
    Machine.exec section.Golden.kernel ~scalars:section.Golden.scalars ~buffers ~budget ()
  in
  {
    br_ok = (run.Machine.status = Machine.Finished);
    br_state = state;
    br_in_sums = in_sums;
    br_work = run.Machine.executed;
  }

let in_sum_of br buffer =
  let n = Array.length br.br_in_sums in
  let rec go i =
    if i >= n then 0.0
    else
      let b, s = br.br_in_sums.(i) in
      if b = buffer then s else go (i + 1)
  in
  go 0

(* Least-squares fit y = scale·x + offset; None when x carries no
   variance (a constant input sum cannot predict anything) or any
   moment is non-finite. *)
let fit_line points =
  let n = float_of_int (List.length points) in
  if n < 2.0 then None
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if (not (Float.is_finite denom)) || Float.abs denom <= 1e-12 *. (1.0 +. Float.abs sxx)
    then None
    else begin
      let scale = ((n *. sxy) -. (sx *. sy)) /. denom in
      let offset = (sy -. (scale *. sx)) /. n in
      if Float.is_finite scale && Float.is_finite offset then Some (scale, offset)
      else None
    end
  end

let section_in_focus focus (section : Golden.section_run) =
  match focus with
  | None -> true
  | Some pcs ->
    List.exists (fun pc -> pc.Site.kernel = section.Golden.kernel_index) pcs

(* Per-(section, output) training summary, merged over runs in task
   order. *)
type train_obs = {
  mutable o_min : float;
  mutable o_max : float;
  mutable o_points : (float * float) list;  (** (in_sum, out_sum), newest first *)
}

let run ?(pool = Pool.serial) ?(train = 40) ?(validate = 40) ?(max_perturbation = 0.01)
    ?(safety_factor = 1.25) ?focus ~seed golden ~specs =
  Telemetry.span "detect.synthesize" @@ fun () ->
  let nsections = Array.length golden.Golden.sections in
  if Array.length specs <> nsections then
    invalid_arg "Synthesize.run: one sensitivity spec per schedule section";
  let active =
    Array.of_seq
      (Seq.filter
         (fun si ->
           Array.length specs.(si).Sensitivity.output_buffers > 0
           && section_in_focus focus golden.Golden.sections.(si))
         (Seq.init nsections Fun.id))
  in
  let train_base = Hashing.combine seed 1L in
  let validate_base = Hashing.combine seed 2L in
  let rng_for base si r =
    Rng.create (Hashing.combine base (Int64.of_int ((si * 1_000_003) + r)))
  in
  let work = ref 0 in
  (* --- phase 1: training runs, pooled over (section, run) ------------- *)
  let train_tasks =
    Array.init (Array.length active * train) (fun t ->
        (active.(t / train), t mod train))
  in
  let train_results =
    Pool.map_array pool
      (fun (si, r) ->
        run_benign (rng_for train_base si r) golden ~max_perturbation ~section_index:si
          ~spec:specs.(si))
      train_tasks
  in
  (* Merge per (section, output buffer); list order is task order, so the
     fit sees the same points whatever the pool width. *)
  let obs : (int * int, train_obs) Hashtbl.t = Hashtbl.create 64 in
  let obs_of si o =
    match Hashtbl.find_opt obs (si, o) with
    | Some x -> x
    | None ->
      let x = { o_min = infinity; o_max = neg_infinity; o_points = [] } in
      Hashtbl.add obs (si, o) x;
      x
  in
  Array.iteri
    (fun t br ->
      let si, _ = train_tasks.(t) in
      work := !work + br.br_work;
      if br.br_ok then begin
        let spec = specs.(si) in
        let single_input =
          match spec.Sensitivity.input_buffers with [| i |] -> Some i | _ -> None
        in
        Array.iter
          (fun o ->
            let x = obs_of si o in
            let buf = br.br_state.(o) in
            for e = 0 to Array.length buf - 1 do
              let v =
                match buf.(e) with
                | Value.Float f -> f
                | Value.Int i -> Int64.to_float i
              in
              if v < x.o_min then x.o_min <- v;
              if v > x.o_max then x.o_max <- v
            done;
            match single_input with
            | Some i -> x.o_points <- (in_sum_of br i, Detector.sum buf) :: x.o_points
            | None -> ())
          spec.Sensitivity.output_buffers
      end)
    train_results;
  (* --- phase 2: candidate construction (coordinating domain) ---------- *)
  let candidates = Array.make nsections [||] in
  Array.iter
    (fun si ->
      let spec = specs.(si) in
      let golden_exit = Golden.exit_state golden si in
      let single_input =
        match spec.Sensitivity.input_buffers with [| i |] -> Some i | _ -> None
      in
      let section_cands = ref [] in
      Array.iteri
        (fun o_idx o ->
          let g = golden_exit.(o) in
          let len = Array.length g in
          if len > 0 then begin
            let gmin = ref infinity and gmax = ref neg_infinity and gabs = ref 0.0 in
            let all_finite = ref true in
            Array.iter
              (fun v ->
                if not (Value.is_finite v) then all_finite := false;
                let x = match v with Value.Float f -> f | Value.Int i -> Int64.to_float i in
                if x < !gmin then gmin := x;
                if x > !gmax then gmax := x;
                if Float.abs x > !gabs then gabs := Float.abs x)
              g;
            let add form ~input_len =
              section_cands :=
                {
                  Detector.d_section = si;
                  d_buffer = o;
                  d_form = form;
                  d_cost = Detector.cost_of_form form ~len ~input_len;
                }
                :: !section_cands
            in
            if !all_finite then begin
              add Detector.Finite ~input_len:0;
              let kmax =
                Array.fold_left Float.max 0.0 spec.Sensitivity.k.(o_idx)
              in
              let margin = kmax *. max_perturbation *. safety_factor in
              let tiny = 1e-9 *. (1.0 +. !gabs) in
              let x = obs_of si o in
              if Float.is_finite margin then begin
                let lo = Float.min !gmin (Float.min x.o_min !gmin) -. margin -. tiny in
                let hi = Float.max !gmax (Float.max x.o_max !gmax) +. margin +. tiny in
                add (Detector.Range { lo; hi }) ~input_len:0
              end;
              match single_input with
              | None -> ()
              | Some input ->
                let entry = golden.Golden.sections.(si).Golden.entry_state in
                let g_point = (Detector.sum entry.(input), Detector.sum g) in
                let points = g_point :: List.rev x.o_points in
                (match fit_line points with
                | None -> ()
                | Some (scale, offset) ->
                  let resid =
                    List.fold_left
                      (fun acc (px, py) ->
                        Float.max acc (Float.abs (py -. ((scale *. px) +. offset))))
                      0.0 points
                  in
                  let g_out = snd g_point in
                  if Float.is_finite resid then begin
                    let tol =
                      (resid *. safety_factor) +. (1e-9 *. (1.0 +. Float.abs g_out))
                    in
                    add
                      (Detector.Linear { input; scale; offset; tol })
                      ~input_len:(Array.length entry.(input))
                  end)
            end
          end)
        spec.Sensitivity.output_buffers;
      candidates.(si) <- Array.of_list (List.rev !section_cands))
    active;
  (* --- phase 3: validation, dropping any candidate that fires --------- *)
  let validate_tasks =
    Array.init (Array.length active * validate) (fun t ->
        (active.(t / validate), t mod validate))
  in
  let masks =
    Pool.map_array pool
      (fun (si, r) ->
        let br =
          run_benign (rng_for validate_base si r) golden ~max_perturbation
            ~section_index:si ~spec:specs.(si)
        in
        let mask = ref 0 in
        if br.br_ok then
          Array.iteri
            (fun j (d : Detector.t) ->
              let entry_sum =
                match d.Detector.d_form with
                | Detector.Linear { input; _ } -> in_sum_of br input
                | Detector.Finite | Detector.Range _ -> 0.0
              in
              if Detector.fires d ~entry_sum br.br_state.(d.Detector.d_buffer) then
                mask := !mask lor (1 lsl j))
            candidates.(si);
        (!mask, br.br_work))
      validate_tasks
  in
  let fired = Array.make nsections 0 in
  Array.iteri
    (fun t (mask, w) ->
      let si, _ = validate_tasks.(t) in
      work := !work + w;
      fired.(si) <- fired.(si) lor mask)
    masks;
  let dropped = ref 0 in
  Array.iter
    (fun si ->
      let keep = ref [] in
      Array.iteri
        (fun j d ->
          if fired.(si) land (1 lsl j) = 0 then keep := d :: !keep else incr dropped)
        candidates.(si);
      candidates.(si) <- Array.of_list (List.rev !keep))
    active;
  let n_candidates = Array.fold_left (fun acc a -> acc + Array.length a) 0 candidates in
  Telemetry.add m_sections (Array.length active);
  Telemetry.add m_candidates n_candidates;
  Telemetry.add m_dropped !dropped;
  Telemetry.add m_runs (Array.length train_tasks + Array.length validate_tasks);
  Telemetry.add m_work !work;
  {
    candidates;
    spec_hash = Detector.spec_hash candidates;
    train_runs = train;
    validation_runs = validate;
    (* the surviving set fired zero times on the validation runs — that
       is what "surviving" means, and it is a measured count, not an
       assumption *)
    fp_fires = 0;
    dropped = !dropped;
    work = !work;
  }

(* Tolerant scan of a [security --json] export for "kernel": k /
   "instr": i pairs, in order of appearance. *)
let focus_of_json text =
  let len = String.length text in
  let rec skip_ws i = if i < len && (text.[i] = ' ' || text.[i] = '\n') then skip_ws (i + 1) else i in
  let parse_int i =
    let i = skip_ws i in
    let j = ref i in
    if !j < len && text.[!j] = '-' then incr j;
    while !j < len && text.[!j] >= '0' && text.[!j] <= '9' do
      incr j
    done;
    if !j > i then
      match int_of_string_opt (String.sub text i (!j - i)) with
      | Some v -> Some (v, !j)
      | None -> None
    else None
  in
  let find_from pat i =
    let plen = String.length pat in
    let rec go i =
      if i + plen > len then None
      else if String.sub text i plen = pat then Some (i + plen)
      else go (i + 1)
    in
    go i
  in
  let rec collect i acc =
    match find_from "\"kernel\":" i with
    | None -> List.rev acc
    | Some j -> (
      match parse_int j with
      | None -> List.rev acc
      | Some (kernel, j) -> (
        match find_from "\"instr\":" j with
        | None -> List.rev acc
        | Some j2 -> (
          match parse_int j2 with
          | None -> List.rev acc
          | Some (instr, j3) -> collect j3 ({ Site.kernel; instr } :: acc))))
  in
  collect 0 []
