(* Working at the substrate level: compile a kernel, inject individual
   bitflips by hand, and watch the outcome taxonomy (masked / SDC / crash /
   timeout) emerge — the ground floor the whole analysis is built on.

   Run with:  dune exec examples/custom_kernel.exe *)

module Golden = Ff_vm.Golden
module Machine = Ff_vm.Machine
module Replay = Ff_vm.Replay
module Outcome = Ff_inject.Outcome
module Site = Ff_inject.Site
module Eqclass = Ff_inject.Eqclass

let source =
  {|
buffer coeffs : float[4] = { 0.5, -0.25, 0.125, 1.5 };
output buffer horner : float[1] = zeros;

kernel eval(x: float, in coeffs: float[], out horner: float[]) {
  var acc: float = 0.0;
  for i in 0..4 {
    acc = acc * x + coeffs[3 - i];
  }
  horner[0] = acc;
}

schedule { call eval(2.0, coeffs, horner); }
|}

let () =
  let program = Ff_lang.Frontend.compile_exn source in
  let golden = Golden.run program in
  let section = golden.Golden.sections.(0) in
  Printf.printf "golden run: %d dynamic instructions, horner(2.0) = %s\n\n"
    section.Golden.dyn_count
    (Ff_ir.Value.to_string golden.Golden.final_state.(1).(0));

  (* The compiled section, as the injector sees it. *)
  Format.printf "%a@." Ff_ir.Kernel.pp section.Golden.kernel;

  (* Inject a few hand-picked single-bit flips and classify the outcomes. *)
  let inject ~dyn ~operand ~bit =
    let injection = Replay.Fault { Machine.at_dyn = dyn; operand; bit } in
    let replay = Replay.run_section golden section injection ~timeout_factor:5.0 in
    Outcome.of_section_replay replay
  in
  Printf.printf "\nhand-picked injections (dynamic index, operand, bit):\n";
  List.iter
    (fun (dyn, operand, bit, label) ->
      let outcome = inject ~dyn ~operand ~bit in
      Printf.printf "  dyn=%2d %-6s bit=%2d  ->  %s   (%s)\n" dyn
        (match operand with
        | Machine.Osrc i -> Printf.sprintf "src%d" i
        | Machine.Odst -> "dst"
        | Machine.Oskip -> "skip"
        | Machine.Oenc -> "enc")
        bit
        (Format.asprintf "%a" Outcome.pp_section outcome)
        label)
    [
      (0, Machine.Odst, 0, "low mantissa bit of a constant");
      (0, Machine.Odst, 62, "high exponent bit: huge value");
      (2, Machine.Osrc 0, 63, "sign of a loop quantity");
      (5, Machine.Osrc 0, 1, "index register: possible out-of-bounds");
    ];

  (* Enumerate every error site of the section and tally the outcome mix —
     a one-section Approxilyzer campaign by hand. *)
  let bits = Site.Bit_list [ 0; 1; 15; 31; 47; 62; 63 ] in
  let masked = ref 0 and sdc = ref 0 and detected = ref 0 in
  let classes = Eqclass.for_section section bits in
  List.iter
    (fun cls ->
      let outcome =
        inject ~dyn:cls.Eqclass.pilot.Site.dyn
          ~operand:
            (match cls.Eqclass.operand with
            | Site.Src i -> Machine.Osrc i
            | Site.Dst -> Machine.Odst
            | Site.Op | Site.Mem _ ->
              (* default single-bit model: register operands only *)
              assert false)
          ~bit:cls.Eqclass.bit
      in
      let weight = Eqclass.size cls in
      match outcome with
      | Outcome.S_detected _ -> detected := !detected + weight
      | Outcome.S_sdc _ when Outcome.section_is_masked outcome -> masked := !masked + weight
      | Outcome.S_sdc _ -> sdc := !sdc + weight)
    classes;
  let total = !masked + !sdc + !detected in
  Printf.printf
    "\nfull campaign over %d sites (%d equivalence classes):\n\
    \  masked   %4d (%.0f%%)\n\
    \  SDC      %4d (%.0f%%)\n\
    \  detected %4d (%.0f%%)\n"
    total (List.length classes) !masked
    (100.0 *. float_of_int !masked /. float_of_int total)
    !sdc
    (100.0 *. float_of_int !sdc /. float_of_int total)
    !detected
    (100.0 *. float_of_int !detected /. float_of_int total)
