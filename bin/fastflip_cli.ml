(* The fastflip command-line tool.

   Subcommands:
     compile  <file>      parse/typecheck/lower a program and print its IR
     run      <file>      golden-run a program and print its outputs
     analyze  <file>      full FastFlip analysis: per-pc value/cost table
                          and the knapsack selection for a target
     compare  <file>      FastFlip vs monolithic-baseline utility and work
     bench    <name>      analyze a built-in benchmark (3 versions,
                          incremental store) and print speedups
     list                 list the built-in benchmarks
     security <program>   attacker-fault-model campaign and damage report
     protect  <program>   detector synthesis + mixed duplication/detector
                          Pareto front
     serve    <socket>    analysis-as-a-service daemon with warm state
     query    <socket> <file>   analyze via a running daemon
     shutdown <socket>    stop a running daemon cleanly
     store stat    <path> inspect a persistent store's layout and health
     store compact <path> rewrite a store down to its live records *)

open Cmdliner
module Pipeline = Fastflip.Pipeline
module Campaign = Ff_inject.Campaign
module Site = Ff_inject.Site
module Table = Ff_support.Table
module Pool = Ff_support.Pool
module Telemetry = Ff_support.Telemetry
module Protocol = Ff_serve.Protocol

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_file path =
  match Ff_lang.Frontend.compile (read_file path) with
  | Ok program -> program
  | Error e ->
    Format.eprintf "%s: %a@." path Ff_lang.Frontend.pp_error e;
    exit 1

(* The option-to-config mapping lives in Ff_serve.Engine so the one-shot
   commands and the daemon build the exact same configuration — the
   byte-identity contract between [analyze] and [query] depends on it. *)
let config_of ?(epsilon = 0.0) ?model ?safety_factor ~bits ~samples ~no_prove () =
  Ff_serve.Engine.config_of ?model ?safety_factor ~bits ~samples ~epsilon
    ~prove:(not no_prove) ()

(* --- arguments ----------------------------------------------------------- *)

let fault_model_conv =
  let parse s =
    match Ff_inject.Fault_model.of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"MODEL"
    (parse, fun fmt m -> Format.pp_print_string fmt (Ff_inject.Fault_model.to_string m))

let fault_model_arg =
  Arg.(value & opt fault_model_conv Ff_inject.Fault_model.default
         & info [ "fault-model" ] ~docv:"NAME[:PARAMS]"
             ~doc:"Fault model for the injection campaign: $(b,bitflip) (the               default single-bit register flip), $(b,bitflip:N) (an N-bit burst),               $(b,skip) (drop one dynamic instruction), $(b,opcode) (corrupt one               bit of the instruction encoding; invalid results are detected, never               undefined), or $(b,memflip)[$(b,:N)] (flip bits of one buffer element               in the section's entry state). The model is part of the store key, so               different models never share cached results; the default hashes               identically to pre-model stores.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Kernel-language source file.")

let target_arg =
  Arg.(value & opt float 0.9 & info [ "t"; "target" ] ~docv:"V" ~doc:"Target protection value v_trgt in [0,1].")

let bits_arg =
  Arg.(value & opt (list int) [] & info [ "bits" ] ~docv:"B1,B2,..."
         ~doc:"Bit positions to inject (default: the stratified 16-bit subset).")

let samples_arg =
  Arg.(value & opt int 200 & info [ "samples"; "sens-samples" ] ~docv:"N"
         ~doc:"Sensitivity-analysis samples per input buffer. The telemetry               counters $(b,sensitivity.samples_used) and $(b,sensitivity.work) in               $(b,--metrics) report how many were actually consumed and what they               cost.")

let safety_factor_arg =
  Arg.(value & opt (some float) None & info [ "sens-safety-factor" ] ~docv:"F"
         ~doc:"Safety factor applied to sensitivity Lipschitz estimates (and to               synthesized detector thresholds, which inherit it). Default 1.25.               Part of the store key: runs with different factors never share               cached section records.")

let epsilon_arg =
  Arg.(value & opt float 0.0 & info [ "epsilon" ] ~docv:"E"
         ~doc:"SDC-Bad threshold: SDC magnitudes up to E are acceptable.")

let no_prove_arg =
  Arg.(value & flag & info [ "no-prove" ]
         ~doc:"Disable the static outcome prover pre-pass and replay every               equivalence class (the $(b,FF_PROVE=off) environment variable has               the same effect). Results are bit-identical either way — the               prover only skips replays whose outcome it has already proved —               so this is a triage/measurement knob, not a semantic one. Note               that prove-on and prove-off runs never share $(b,--store) records:               the prover policy is part of the store key.")

let jobs_arg =
  Arg.(value & opt int (Pool.default_domains ()) & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domains to run injection campaigns and sensitivity sampling on               (default: \\$FF_DOMAINS, else the recommended domain count).               Results are bit-identical for every N.")

let with_jobs jobs k =
  let jobs =
    match Pool.parse_domains (string_of_int jobs) with
    | Ok n -> n
    | Error msg ->
      Printf.eprintf "fastflip: invalid --jobs (%s); running on 1 domain\n%!" msg;
      1
  in
  Pool.with_pool ~domains:jobs k

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write engine telemetry (campaign injection counts, store               hit/miss counts, pool task counts, span timings) as deterministic               JSON to $(docv). Timing and scheduling-dependent fields are               segregated under the top-level \\\"timings\\\" key; everything else is               bit-stable across runs with the same seed.")

let with_metrics metrics k =
  match metrics with
  | None -> k ()
  | Some path ->
    Telemetry.reset ();
    Telemetry.set_enabled true;
    let result = k () in
    Telemetry.write ~path ();
    Printf.printf "wrote telemetry to %s\n" path;
    result

let store_arg =
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"PATH"
         ~doc:"Persistent analysis store: loaded before the analysis (section                results whose code, inputs and configuration are unchanged are                reused) and saved back afterwards — the CI workflow of the paper.")

let strict_store_arg =
  Arg.(value & flag & info [ "strict-store" ]
         ~doc:"Refuse to run if the store has corrupt or unreadable records               (the default salvages every intact record and warns).")

let shards_arg =
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N"
         ~doc:"Shard count when $(b,--store) creates a fresh store (default 16).               An existing store keeps its on-disk layout regardless; reshard               with $(b,fastflip store compact --shards).")

(* Loading through [load_v] keeps the store's generation so the save can
   prove it has already seen everything on disk — over a legacy v1/v2
   file that skips the merge re-read the migration would otherwise pay. *)
let with_store ~strict ?shards store_path k =
  match store_path with
  | None -> k (Fastflip.Store.create ())
  | Some path ->
    let store, generation =
      if Fastflip.Persist.present ~path then begin
        match Fastflip.Persist.load_v ~path with
        | Ok (store, skipped, generation) ->
          if skipped > 0 then begin
            if strict then begin
              Printf.eprintf "fastflip: store %s: %d corrupt record(s) refused by --strict-store\n"
                path skipped;
              exit 1
            end;
            Printf.eprintf "warning: store %s: skipped %d corrupt record(s)\n" path skipped
          end;
          Printf.printf "loaded %d section records from %s\n" (Fastflip.Store.size store) path;
          (store, Some generation)
        | Error e ->
          if strict then begin
            Printf.eprintf "fastflip: store %s refused by --strict-store: %s\n" path e;
            exit 1
          end;
          Printf.eprintf "ignoring store %s: %s\n" path e;
          (Fastflip.Store.create (), None)
      end
      else (Fastflip.Store.create (), None)
    in
    let result = k store in
    let stats = Fastflip.Persist.save ?known_generation:generation ?shards store ~path in
    Printf.printf "saved %d section records to %s\n" stats.Fastflip.Persist.sv_live path;
    result

let checkpoint_every_arg =
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Checkpoint campaign progress every $(docv) equivalence classes to               a journal next to the store ($(b,--store) required); a killed run               restarted with $(b,--resume) replays only the unfinished classes.               0 (the default) disables checkpointing.")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Resume from the checkpoint journal left by a killed run               (requires $(b,--checkpoint-every)). Results are bit-identical to               an uninterrupted run.")

(* The journal outlives the process on a crash by design; it is removed
   only after [k] returns, i.e. after the store save inside it succeeded.
   Progress chatter goes to stderr so resumed stdout diffs clean against
   an uninterrupted run. *)
let with_checkpoint ~store_path ~every ~resume k =
  if every < 0 then begin
    Printf.eprintf "fastflip: --checkpoint-every must be >= 0\n";
    exit 1
  end;
  if every = 0 then begin
    if resume then begin
      Printf.eprintf "fastflip: --resume requires --checkpoint-every\n";
      exit 1
    end;
    k None
  end
  else
    match store_path with
    | None ->
      Printf.eprintf "fastflip: --checkpoint-every requires --store\n";
      exit 1
    | Some path -> (
      let jpath = path ^ ".journal" in
      match Fastflip.Checkpoint.start ~path:jpath ~every ~resume () with
      | Error e ->
        Printf.eprintf "fastflip: cannot open checkpoint journal %s: %s\n" jpath e;
        exit 1
      | Ok ckpt ->
        if resume then
          Printf.eprintf "resuming: %d class outcome(s) restored from %s%s\n%!"
            (Fastflip.Checkpoint.loaded ckpt) jpath
            (match Fastflip.Checkpoint.skipped ckpt with
            | 0 -> ""
            | n -> Printf.sprintf " (%d corrupt region(s) skipped)" n);
        let result = k (Some ckpt) in
        Fastflip.Checkpoint.remove ckpt;
        result)

(* --- compile -------------------------------------------------------------- *)

let compile_cmd =
  let run path =
    let program = compile_file path in
    Format.printf "%a@." Ff_ir.Program.pp program
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a program and print its MiniVM IR.")
    Term.(const run $ file_arg)

(* --- run ------------------------------------------------------------------- *)

let run_cmd =
  let run path =
    let program = compile_file path in
    let golden = Ff_vm.Golden.run program in
    Printf.printf "sections: %d, dynamic instructions: %d\n"
      (Array.length golden.Ff_vm.Golden.sections)
      golden.Ff_vm.Golden.total_dyn;
    let show = function
      | Ff_ir.Value.Int v -> Int64.to_string v
      | Ff_ir.Value.Float v -> Printf.sprintf "%.10g" v
    in
    List.iter
      (fun (_, name, values) ->
        Printf.printf "%s = [%s]\n" name
          (String.concat "; " (Array.to_list (Array.map show values))))
      (Ff_vm.Golden.outputs golden)
  in
  Cmd.v (Cmd.info "run" ~doc:"Golden-run a program and print its outputs.")
    Term.(const run $ file_arg)

(* --- analyze ---------------------------------------------------------------- *)

let analyze_cmd =
  let run path target bits samples safety_factor epsilon store_path strict shards jobs
      metrics every resume no_prove model =
    let config = config_of ~epsilon ~model ?safety_factor ~bits ~samples ~no_prove () in
    let program = compile_file path in
    let analysis =
      with_metrics metrics (fun () ->
          with_jobs jobs (fun pool ->
              with_checkpoint ~store_path ~every ~resume (fun checkpoint ->
                  with_store ~strict ?shards store_path (fun store ->
                      Pipeline.analyze ~store ~pool ?checkpoint config program))))
    in
    print_string (Ff_serve.Report.analysis ~target analysis)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the full FastFlip analysis on a program and print the selection.")
    Term.(const run $ file_arg $ target_arg $ bits_arg $ samples_arg $ safety_factor_arg $ epsilon_arg $ store_arg $ strict_store_arg $ shards_arg $ jobs_arg $ metrics_arg $ checkpoint_every_arg $ resume_arg $ no_prove_arg $ fault_model_arg)

(* --- compare ----------------------------------------------------------------- *)

let compare_cmd =
  let run path target bits samples epsilon jobs metrics no_prove model =
    let config = config_of ~epsilon ~model ~bits ~samples ~no_prove () in
    let program = compile_file path in
    let ff, base =
      with_metrics metrics (fun () ->
          with_jobs jobs (fun pool ->
              let ff = Pipeline.analyze ~pool config program in
              let base =
                Fastflip.Baseline.analyze ~pool config.Pipeline.campaign ~epsilon
                  ff.Pipeline.golden
              in
              (ff, base)))
    in
    let row =
      Fastflip.Compare.row ~ff ~base ~inaccuracy:0.04 ~target ~used_target:target
    in
    Printf.printf "FastFlip work:  %d simulated instructions\n" ff.Pipeline.work;
    Printf.printf "Baseline work:  %d simulated instructions\n" base.Fastflip.Baseline.work;
    Printf.printf "achieved value: %.4f (target %.2f, error range +-%.4f)%s\n"
      row.Fastflip.Compare.achieved target row.Fastflip.Compare.error_range
      (if row.Fastflip.Compare.acceptable then "" else "  [BELOW RANGE]");
    Printf.printf "FastFlip cost:  %.4f of the trace\n" row.Fastflip.Compare.ff_cost;
    Printf.printf "Baseline cost:  %.4f of the trace (excess %+.4f)\n"
      row.Fastflip.Compare.base_cost row.Fastflip.Compare.cost_diff
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare FastFlip's selection against the monolithic baseline.")
    Term.(const run $ file_arg $ target_arg $ bits_arg $ samples_arg $ epsilon_arg $ jobs_arg $ metrics_arg $ no_prove_arg $ fault_model_arg)

(* --- bench -------------------------------------------------------------------- *)

let bench_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK"
           ~doc:"Benchmark name (see 'fastflip list').")
  in
  let run name bits samples jobs metrics no_prove model =
    match Ff_benchmarks.Registry.find name with
    | None ->
      Printf.eprintf "unknown benchmark %s; try: %s\n" name
        (String.concat ", " Ff_benchmarks.Registry.names);
      exit 1
    | Some bench ->
      let config = config_of ~model ~bits ~samples ~no_prove () in
      let run =
        with_metrics metrics (fun () ->
            with_jobs jobs (fun pool ->
                Ff_harness.Experiments.run_benchmark ~config ~pool bench))
      in
      let t =
        Table.create
          ~title:(Printf.sprintf "%s: FastFlip vs baseline analysis work" bench.Ff_benchmarks.Defs.name)
          [
            ("Version", Table.Left); ("Modification", Table.Left);
            ("FastFlip work", Table.Right); ("Baseline work", Table.Right);
            ("Speedup", Table.Right);
          ]
      in
      List.iter
        (fun r ->
          Table.add_row t
            [
              Ff_benchmarks.Defs.version_name r.Ff_harness.Experiments.version;
              bench.Ff_benchmarks.Defs.modification_desc r.Ff_harness.Experiments.version;
              string_of_int r.Ff_harness.Experiments.ff_work;
              string_of_int r.Ff_harness.Experiments.base_work;
              Printf.sprintf "%.1fx" (Ff_harness.Experiments.speedup r);
            ])
        run.Ff_harness.Experiments.results;
      Table.print t
  in
  Cmd.v (Cmd.info "bench" ~doc:"Analyze a built-in benchmark across its three versions.")
    Term.(const run $ name_arg $ bits_arg $ samples_arg $ jobs_arg $ metrics_arg $ no_prove_arg $ fault_model_arg)

(* --- serve / query / shutdown -------------------------------------------------- *)

let socket_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET"
         ~doc:"Unix domain socket path the daemon listens on.")

let save_every_arg =
  Arg.(value & opt float 0.0 & info [ "save-every" ] ~docv:"SECONDS"
         ~doc:"Checkpoint the store to disk every $(docv) seconds while serving               (requires $(b,--store)). Each checkpoint appends only the records               published since the last save, so a killed daemon loses at most               one interval of results. 0 (the default) saves only on exit.")

let serve_cmd =
  let run socket store_path strict shards save_every jobs metrics =
    let save_every = if save_every > 0.0 then Some save_every else None in
    with_metrics metrics (fun () ->
        with_jobs jobs (fun pool ->
            try
              Ff_serve.Server.run ~socket ?store_path ~strict_store:strict ?save_every
                ?shards ~pool ()
            with Failure msg ->
              Printf.eprintf "fastflip: %s\n" msg;
              exit 1))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the analysis-as-a-service daemon: accept analyze requests from               many concurrent clients over $(docv), keeping decoded kernels,               golden traces, workspace plans, and the store hot across requests.               Responses are byte-identical to the one-shot $(b,analyze) command.               Stop with SIGTERM/SIGINT or the $(b,shutdown) subcommand.")
    Term.(const run $ socket_arg $ store_arg $ strict_store_arg $ shards_arg $ save_every_arg $ jobs_arg $ metrics_arg)

let query_cmd =
  let file_pos1_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE"
           ~doc:"Kernel-language source file.")
  in
  let run socket path target bits samples epsilon no_prove model =
    let source = read_file path in
    let query =
      {
        Protocol.q_target = target;
        q_bits = bits;
        q_samples = samples;
        q_epsilon = epsilon;
        q_prove = not no_prove;
        q_model = model;
      }
    in
    match Ff_serve.Client.request ~socket (Protocol.Analyze { source; query }) with
    | Ok (Protocol.Report text) -> print_string text
    | Ok (Protocol.Error msg) ->
      Printf.eprintf "fastflip: %s: %s\n" path msg;
      exit 1
    | Ok _ ->
      Printf.eprintf "fastflip: unexpected response from %s\n" socket;
      exit 1
    | Error msg ->
      Printf.eprintf "fastflip: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Analyze a program via a running $(b,serve) daemon and print the               report — byte-identical to running $(b,analyze) directly, but warm               daemon state (cached analyses, decoded kernels, store records)               answers repeat queries in milliseconds.")
    Term.(const run $ socket_arg $ file_pos1_arg $ target_arg $ bits_arg $ samples_arg $ epsilon_arg $ no_prove_arg $ fault_model_arg)

let shutdown_cmd =
  let run socket =
    match Ff_serve.Client.request ~socket Protocol.Shutdown with
    | Ok Protocol.Bye -> print_endline "daemon acknowledged shutdown"
    | Ok _ ->
      Printf.eprintf "fastflip: unexpected response from %s\n" socket;
      exit 1
    | Error msg ->
      Printf.eprintf "fastflip: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Stop a running $(b,serve) daemon cleanly (it saves               its store and removes the socket before exiting).")
    Term.(const run $ socket_arg)

(* --- store stat / compact ------------------------------------------------------- *)

let store_pos_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH"
         ~doc:"Persistent analysis store path (as passed to --store).")

let store_stat_cmd =
  let run path =
    let open Fastflip.Persist in
    match stat ~path with
    | Error e ->
      Printf.eprintf "fastflip: %s: %s\n" path e;
      exit 1
    | Ok info ->
      Printf.printf "format:     %s\n" info.st_format;
      Printf.printf "shards:     %d\n" info.st_shards;
      Printf.printf "generation: %Ld\n" info.st_generation;
      Printf.printf "records:    %d live, %d dead frame(s)\n" info.st_live info.st_dead;
      Printf.printf "bytes:      %d\n" info.st_bytes;
      if info.st_skipped > 0 then
        Printf.printf "skipped:    %d corrupt record(s)/region(s)\n" info.st_skipped;
      if String.equal info.st_format "FFSTORE3" then begin
        let t =
          Table.create ~title:"shard logs"
            [
              ("Shard", Table.Left); ("Frames", Table.Right); ("Live", Table.Right);
              ("Bytes", Table.Right); ("Skipped", Table.Right);
            ]
        in
        List.iter
          (fun s ->
            Table.add_row t
              [
                Printf.sprintf "s%02d" s.sh_index; string_of_int s.sh_frames;
                string_of_int s.sh_live; string_of_int s.sh_bytes;
                string_of_int s.sh_skipped;
              ])
          info.st_per_shard;
        Table.print t
      end
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:"Inspect a store without locking it: format, shard layout, generation,               live vs dead (superseded) records, and any corruption found.")
    Term.(const run $ store_pos_arg)

let store_compact_cmd =
  let run path shards =
    let open Fastflip.Persist in
    match compact ?shards ~path () with
    | Error e ->
      Printf.eprintf "fastflip: %s: %s\n" path e;
      exit 1
    | Ok c ->
      Printf.printf "compacted %s: %d live record(s), %d dead frame(s) dropped, %d shard(s), generation %Ld\n"
        path c.cp_live c.cp_dropped c.cp_shards c.cp_generation
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Rewrite a store down to its live records under the shard locks.               $(b,--shards) reshards to a new layout width; a legacy               FFSTORE1/FFSTORE2 file is migrated to the sharded FFSTORE3 layout.")
    Term.(const run $ store_pos_arg $ shards_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store" ~doc:"Inspect and maintain a persistent analysis store.")
    [ store_stat_cmd; store_compact_cmd ]

(* --- security -------------------------------------------------------------------- *)

let security_cmd =
  let target_pos_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Kernel-language source file, or the name of a built-in benchmark                 (see 'fastflip list'; benchmarks analyze their large — modified —                 version, e.g. SHA2's lookup-table compression with its $(b,hit)                 comparison guard).")
  in
  let security_model_arg =
    Arg.(value & opt fault_model_conv Ff_inject.Fault_model.Skip
           & info [ "fault-model" ] ~docv:"NAME[:PARAMS]"
               ~doc:"Attacker primitive to campaign with (default $(b,skip):                     glitching one dynamic instruction). Any fault model is                     accepted; $(b,opcode) and $(b,memflip) model encoding and                     memory attacks.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the findings as deterministic JSON to $(docv):                 per-finding pc (kernel/instr), attack-outcome kind, silent-damage                 site counts, and the campaign totals. The export seeds                 $(b,fastflip protect --seed-security).")
  in
  let run name target bits samples epsilon jobs metrics no_prove model json =
    let program =
      if Sys.file_exists name then compile_file name
      else
        match Ff_benchmarks.Registry.find name with
        | Some bench ->
          Ff_lang.Frontend.compile_exn
            (bench.Ff_benchmarks.Defs.source Ff_benchmarks.Defs.V_large)
        | None ->
          Printf.eprintf "fastflip: %s is neither a file nor a benchmark (try: %s)\n"
            name
            (String.concat ", " Ff_benchmarks.Registry.names);
          exit 1
    in
    let config = config_of ~epsilon ~model ~bits ~samples ~no_prove () in
    let result =
      with_metrics metrics (fun () ->
          with_jobs jobs (fun pool ->
              let golden = Ff_vm.Golden.run program in
              Fastflip.Security.analyze ~pool ~epsilon golden
                config.Pipeline.campaign))
    in
    print_string (Fastflip.Security.report ~target result);
    match json with
    | None -> ()
    | Some path ->
      let oc = open_out_bin path in
      output_string oc (Fastflip.Security.findings_json result);
      close_out oc;
      Printf.printf "wrote findings to %s\n" path
  in
  Cmd.v
    (Cmd.info "security"
       ~doc:"Attack-surface campaign: inject an attacker-style fault model               (instruction skip by default) end to end, report which sites let a               fault bypass a comparison or silently corrupt state, and what the               knapsack would protect first under that threat model.")
    Term.(const run $ target_pos_arg $ target_arg $ bits_arg $ samples_arg $ epsilon_arg $ jobs_arg $ metrics_arg $ no_prove_arg $ security_model_arg $ json_arg)

(* --- protect --------------------------------------------------------------------- *)

let protect_cmd =
  let target_pos_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
           ~doc:"Kernel-language source file, or the name of a built-in benchmark                 (analyzed at its large version, see 'fastflip list').")
  in
  let detectors_arg =
    Arg.(value & flag & info [ "detectors" ]
           ~doc:"Synthesize runtime detectors, measure their coverage by                 re-injecting every SDC-Bad equivalence class, and let the mixed                 knapsack trade them against instruction duplication. Without this                 flag the command reports the pure-duplication selection in the                 same format.")
  in
  let pareto_arg =
    Arg.(value & opt (some string) None & info [ "pareto" ] ~docv:"FILE"
           ~doc:"Write the full protection-value vs cost Pareto front (mixed and                 pure-duplication, plus the candidate detectors and both selections                 at the target) as deterministic JSON to $(docv).")
  in
  let seed_security_arg =
    Arg.(value & opt (some file) None & info [ "seed-security" ] ~docv:"FILE"
           ~doc:"Restrict detector synthesis to sections whose kernel contains a                 finding from a $(b,fastflip security --json) export — detector                 placement seeded by the attack-surface campaign.")
  in
  let max_detectors_arg =
    Arg.(value & opt int 8 & info [ "max-detectors" ] ~docv:"N"
           ~doc:"Global candidate-detector pool size (the mixed optimizer                 enumerates its subsets; hard limit 16).")
  in
  let run name target bits samples safety_factor epsilon store_path strict shards jobs
      metrics no_prove model detectors pareto seed_security max_detectors =
    let program =
      if Sys.file_exists name then compile_file name
      else
        match Ff_benchmarks.Registry.find name with
        | Some bench ->
          Ff_lang.Frontend.compile_exn
            (bench.Ff_benchmarks.Defs.source Ff_benchmarks.Defs.V_large)
        | None ->
          Printf.eprintf "fastflip: %s is neither a file nor a benchmark (try: %s)\n"
            name
            (String.concat ", " Ff_benchmarks.Registry.names);
          exit 1
    in
    let config = config_of ~epsilon ~model ?safety_factor ~bits ~samples ~no_prove () in
    let focus =
      Option.map
        (fun path -> Ff_detect.Synthesize.focus_of_json (read_file path))
        seed_security
    in
    let result =
      with_metrics metrics (fun () ->
          with_jobs jobs (fun pool ->
              with_store ~strict ?shards store_path (fun store ->
                  let analysis = Pipeline.analyze ~store ~pool config program in
                  let backing = Pipeline.backing_of_store store in
                  Ff_detect.Protect.run ~pool ~backing ~detectors_enabled:detectors
                    ~max_detectors ?focus config analysis ~target)))
    in
    print_string (Ff_detect.Protect.report result);
    match pareto with
    | None -> ()
    | Some path ->
      let oc = open_out_bin path in
      output_string oc (Ff_detect.Protect.pareto_json result);
      close_out oc;
      Printf.printf "wrote pareto front to %s\n" path
  in
  Cmd.v
    (Cmd.info "protect"
       ~doc:"Protection planning with learned runtime detectors: synthesize               range/finiteness/linear-invariant checks on section outputs from the               golden trace and benign perturbed runs, measure which SDC-Bad               equivalence classes each check actually catches by re-injecting their               pilots, and report the Pareto front where shared detectors compete               with per-instruction duplication. Deterministic for any $(b,--jobs)               width; coverage replays are cached in $(b,--store).")
    Term.(const run $ target_pos_arg $ target_arg $ bits_arg $ samples_arg $ safety_factor_arg $ epsilon_arg $ store_arg $ strict_store_arg $ shards_arg $ jobs_arg $ metrics_arg $ no_prove_arg $ fault_model_arg $ detectors_arg $ pareto_arg $ seed_security_arg $ max_detectors_arg)

(* --- list ---------------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun b ->
        Printf.printf "%-9s %-10s %s\n" b.Ff_benchmarks.Defs.name
          b.Ff_benchmarks.Defs.input_desc b.Ff_benchmarks.Defs.sections_desc)
      Ff_benchmarks.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in paper benchmarks.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "fastflip" ~version:"1.0.0"
      ~doc:"Compositional SDC resiliency analysis (FastFlip, CGO 2025 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            compile_cmd; run_cmd; analyze_cmd; compare_cmd; bench_cmd; list_cmd;
            security_cmd; protect_cmd; serve_cmd; query_cmd; shutdown_cmd; store_cmd;
          ]))
